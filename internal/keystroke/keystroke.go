// Package keystroke demonstrates the interrupt-based keystroke-timing
// attack family the paper surveys in §7.1 (Lipp et al., KeyDrown, Trostle):
// each keypress raises a keyboard interrupt; an attacker polling a timer on
// the same core sees the handler as an execution gap and recovers
// inter-keystroke intervals, which leak typed content.
//
// The paper's point about this family: keyboard IRQs are *movable*, so the
// attack "can easily be defeated by handling the keyboard interrupts on a
// different core" — unlike the non-movable interrupts powering the
// website-fingerprinting attack. Mitigate shows exactly that on the same
// machine model.
package keystroke

import (
	"fmt"

	"repro/internal/interrupt"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Keystroke is one key event.
type Keystroke struct {
	At   sim.Time
	Char byte
}

// digraphLatency returns a deterministic per-character-pair mean latency:
// typists have characteristic inter-key timings that depend on the key
// pair (same-hand vs alternating, distance on the keyboard).
func digraphLatency(prev, next byte) sim.Duration {
	mix := uint32(prev)*31 + uint32(next)*17
	base := 90 + int64(mix%120) // 90–210 ms means
	return sim.Duration(base) * sim.Millisecond
}

// SynthesizeTyping generates keystroke times for text starting at `start`,
// with log-normal variation around the digraph means.
func SynthesizeTyping(text string, start sim.Time, rng *sim.Stream) []Keystroke {
	out := make([]Keystroke, 0, len(text))
	at := start
	prev := byte(' ')
	for i := 0; i < len(text); i++ {
		ch := text[i]
		if i > 0 {
			at += rng.DurLogNormal(digraphLatency(prev, ch), 0.18, 30*sim.Millisecond, sim.Second)
		}
		out = append(out, Keystroke{At: at, Char: ch})
		prev = ch
	}
	return out
}

// Inject schedules the keyboard interrupts for the given keystrokes on
// machine m. Each keypress raises a device IRQ (press) and a second one
// shortly after (release), like a real PS/2/USB HID stream.
func Inject(m *kernel.Machine, ks []Keystroke) {
	rng := m.RNG().Fork("keystrokes")
	for _, k := range ks {
		k := k
		m.Eng.Schedule(k.At, func() { m.Ctl.RaiseIRQ(interrupt.Keyboard) })
		release := k.At + rng.DurUniform(60*sim.Millisecond, 120*sim.Millisecond)
		m.Eng.Schedule(release, func() { m.Ctl.RaiseIRQ(interrupt.Keyboard) })
	}
}

// Detect finds keystroke candidates in an attacker trace: samples whose
// counter dips more than dropFrac (e.g. 0.01 = 1 %) below the trace median.
// Timer ticks steal ~0.2 % of a 1 ms sample while the keyboard input
// pipeline steals ~2 %, so a threshold between the two separates keystrokes
// from the periodic background. Detections are the virtual times of the
// first sample of each dip run.
func Detect(tr trace.Trace, dropFrac float64) []sim.Time {
	if len(tr.Values) == 0 || dropFrac <= 0 {
		return nil
	}
	med := median(tr.Values)
	thresh := med * (1 - dropFrac)
	var out []sim.Time
	inDip := false
	for i, v := range tr.Values {
		if v < thresh {
			if !inDip {
				out = append(out, sim.Time(i)*tr.Period)
				inDip = true
			}
		} else {
			inDip = false
		}
	}
	return out
}

func median(xs []float64) float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	// insertion sort is fine at trace sizes; avoids importing sort for
	// float slices with NaN caveats.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp) == 0 {
		return 0
	}
	return cp[len(cp)/2]
}

// Match scores detections against ground truth: a keystroke counts as
// recovered when a detection falls within tol of it. It returns recall
// (fraction of keystrokes found) and precision (fraction of detections
// that correspond to a keystroke or its release).
func Match(truth []Keystroke, detections []sim.Time, tol sim.Duration) (recall, precision float64) {
	if len(truth) == 0 {
		return 0, 0
	}
	found := 0
	for _, k := range truth {
		for _, d := range detections {
			if d >= k.At-tol && d <= k.At+tol+120*sim.Millisecond {
				found++
				break
			}
		}
	}
	recall = float64(found) / float64(len(truth))
	if len(detections) == 0 {
		return recall, 0
	}
	good := 0
	for _, d := range detections {
		for _, k := range truth {
			if d >= k.At-tol && d <= k.At+tol+120*sim.Millisecond {
				good++
				break
			}
		}
	}
	precision = float64(good) / float64(len(detections))
	return recall, precision
}

// Intervals returns successive differences of event times in milliseconds —
// the inter-keystroke timings that leak typed content.
func Intervals(times []sim.Time) []float64 {
	if len(times) < 2 {
		return nil
	}
	out := make([]float64, len(times)-1)
	for i := 1; i < len(times); i++ {
		out[i-1] = (times[i] - times[i-1]).Milliseconds()
	}
	return out
}

// Result summarizes one attack run.
type Result struct {
	Keystrokes int
	Detections int
	Recall     float64
	Precision  float64
}

func (r Result) String() string {
	return fmt.Sprintf("keystrokes=%d detections=%d recall=%.0f%% precision=%.0f%%",
		r.Keystrokes, r.Detections, 100*r.Recall, 100*r.Precision)
}
