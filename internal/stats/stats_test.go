package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton edge cases")
	}
}

func TestMinMaxPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatal("Min/Max wrong")
	}
	if p := Percentile(xs, 50); !almost(p, 4, 1e-12) {
		t.Errorf("median = %v, want 4", p)
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 9 {
		t.Error("extreme percentiles wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, %v; want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
	if _, err := Pearson(xs, xs[:3]); err == nil {
		t.Error("length mismatch not detected")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance not detected")
	}
}

// Property: Pearson is invariant under positive affine transforms.
func TestPearsonAffineInvariance(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		// Bound inputs so the sums of squares cannot overflow float64.
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Mod(v, 1e6)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = 3*x + 7
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // constant input
		}
		return almost(r, 1, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelchTTest(t *testing.T) {
	// Clearly different samples: p should be tiny.
	a := []float64{10, 10.1, 9.9, 10.2, 9.8, 10.0, 10.1, 9.9}
	b := []float64{5, 5.1, 4.9, 5.2, 4.8, 5.0, 5.1, 4.9}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("p = %v, want < 1e-6", res.P)
	}
	if res.T <= 0 {
		t.Errorf("t = %v, want > 0", res.T)
	}

	// Identical distributions: p should be large.
	c := []float64{1, 2, 3, 4, 5, 6}
	d := []float64{1.1, 2.1, 2.9, 4.1, 4.9, 6.1}
	res, err = WelchTTest(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.5 {
		t.Errorf("p = %v, want >= 0.5 for similar samples", res.P)
	}

	if _, err := WelchTTest([]float64{1}, c); err == nil {
		t.Error("insufficient data not detected")
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
	// I_x(1,1) = x
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); !almost(got, x, 1e-9) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{-1, 0, 1, 2.5, 5, 9.99, 10, 11})
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if c := h.BinCenter(0); !almost(c, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v", c)
	}
	if d := h.Density(0); !almost(d, 0.4, 1e-12) {
		t.Errorf("Density(0) = %v", d)
	}
	if h.Render(10) == "" {
		t.Error("Render empty")
	}
	if h.Mode() != 1 {
		t.Errorf("Mode = %v, want 1", h.Mode())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix(3)
	cm.Add(0, 0)
	cm.Add(0, 0)
	cm.Add(0, 1)
	cm.Add(1, 1)
	cm.Add(2, 0)
	if cm.Total() != 5 {
		t.Fatalf("Total = %d", cm.Total())
	}
	if a := cm.Accuracy(); !almost(a, 3.0/5.0, 1e-12) {
		t.Errorf("Accuracy = %v", a)
	}
	if r := cm.ClassRecall(0); !almost(r, 2.0/3.0, 1e-12) {
		t.Errorf("Recall(0) = %v", r)
	}
	if r := cm.ClassRecall(2); r != 0 {
		t.Errorf("Recall(2) = %v", r)
	}
}

func TestTopKAccuracy(t *testing.T) {
	scores := [][]float64{
		{0.5, 0.3, 0.2}, // label 0: rank 0
		{0.5, 0.3, 0.2}, // label 1: rank 1
		{0.5, 0.3, 0.2}, // label 2: rank 2
	}
	labels := []int{0, 1, 2}
	if a := TopKAccuracy(scores, labels, 1); !almost(a, 1.0/3.0, 1e-12) {
		t.Errorf("top1 = %v", a)
	}
	if a := TopKAccuracy(scores, labels, 2); !almost(a, 2.0/3.0, 1e-12) {
		t.Errorf("top2 = %v", a)
	}
	if a := TopKAccuracy(scores, labels, 3); a != 1 {
		t.Errorf("top3 = %v", a)
	}
	if TopKAccuracy(nil, nil, 1) != 0 {
		t.Error("empty input")
	}
}

func TestNormalizeAndZScore(t *testing.T) {
	xs := []float64{1, 2, 4}
	n := NormalizeMax(xs)
	if n[2] != 1 || !almost(n[0], 0.25, 1e-12) {
		t.Errorf("NormalizeMax = %v", n)
	}
	if xs[2] != 4 {
		t.Error("NormalizeMax mutated input")
	}
	z := ZScore([]float64{1, 2, 3})
	if !almost(Mean(z), 0, 1e-12) {
		t.Errorf("ZScore mean = %v", Mean(z))
	}
	if zz := ZScore([]float64{5, 5, 5}); zz[0] != 0 {
		t.Error("zero-variance ZScore should be zeros")
	}
	zeroMax := NormalizeMax([]float64{0, 0})
	if zeroMax[0] != 0 {
		t.Error("zero-max normalize")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	sm := MovingAverage(xs, 3)
	if !almost(sm[2], 3, 1e-12) {
		t.Errorf("center = %v", sm[2])
	}
	if !almost(sm[0], 1.5, 1e-12) { // window clipped at edge
		t.Errorf("edge = %v", sm[0])
	}
	id := MovingAverage(xs, 1)
	for i := range xs {
		if id[i] != xs[i] {
			t.Fatal("window=1 should be identity")
		}
	}
}

func TestArgMaxClamp(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Error("ArgMax wrong")
	}
	if ArgMax(nil) != -1 {
		t.Error("ArgMax empty")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.9, 0.95, 1.0})
	if !almost(s.Mean, 95, 1e-9) {
		t.Errorf("Summary mean = %v", s.Mean)
	}
	if s.String() == "" {
		t.Error("empty string")
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := []float64{9.8, 10.1, 10.0, 9.9, 10.2, 10.0, 9.95, 10.05}
	rng := newDetRNG(7)
	lo, hi, err := BootstrapCI(xs, 0.95, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := Mean(xs)
	if lo > m || hi < m {
		t.Fatalf("CI [%v, %v] excludes mean %v", lo, hi, m)
	}
	if hi-lo <= 0 || hi-lo > 1 {
		t.Fatalf("implausible CI width %v", hi-lo)
	}
	if _, _, err := BootstrapCI(xs[:1], 0.95, 100, rng); err == nil {
		t.Fatal("insufficient data accepted")
	}
	if _, _, err := BootstrapCI(xs, 1.5, 100, rng); err == nil {
		t.Fatal("bad confidence accepted")
	}
	if _, _, err := BootstrapCI(xs, 0.95, 5, rng); err == nil {
		t.Fatal("too few rounds accepted")
	}
}

// newDetRNG is a tiny deterministic LCG for bootstrap tests (the stats
// package must not depend on internal/sim).
func newDetRNG(seed uint64) func(int) int {
	state := seed
	return func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
}

// referenceMovingAverage is the pre-optimization clamped-window loop;
// MovingAverageInto's split edge/interior form must reproduce it
// bit-for-bit (same summation order, same divisor).
func referenceMovingAverage(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	if window <= 1 {
		copy(out, xs)
		return out
	}
	half := window / 2
	for i := range xs {
		lo, hi := i-half, i+half+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(xs) {
			hi = len(xs)
		}
		var s float64
		for j := lo; j < hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

func TestMovingAverageMatchesReference(t *testing.T) {
	rnd := newDetRNG(42)
	for _, n := range []int{0, 1, 2, 3, 5, 8, 31, 300} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rnd(1000)) / 7
		}
		for _, w := range []int{1, 2, 3, 4, 5, 7, 9, n + 3} {
			want := referenceMovingAverage(xs, w)
			got := MovingAverage(xs, w)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d w=%d: [%d] = %v, want %v", n, w, i, got[i], want[i])
				}
			}
		}
	}
}

func TestZScoreMatchesMeanStdDev(t *testing.T) {
	rnd := newDetRNG(7)
	for _, n := range []int{0, 1, 2, 3, 300} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rnd(1000)) / 3
		}
		m, sd := Mean(xs), StdDev(xs)
		got := ZScore(xs)
		for i, x := range xs {
			want := (x - m) / sd
			if sd == 0 {
				want = 0
			}
			if got[i] != want {
				t.Fatalf("n=%d: [%d] = %v, want %v", n, i, got[i], want)
			}
		}
	}
}
