// Package stats provides the statistical primitives used throughout the
// evaluation: summary statistics, Pearson correlation, Welch's two-sample
// t-test (used by the paper to compare classifier accuracies), histograms,
// confusion matrices, and top-k accuracy.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a statistic needs more samples than
// were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element; 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) using linear interpolation
// between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns an error if the lengths differ, there are fewer than two
// samples, or either side has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: Pearson zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// TTestResult reports a Welch two-sample t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs Welch's unequal-variance two-sample t-test, the
// "standard 2-sample t-test" the paper uses to compare classifiers (§4.2).
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se2 := va/na + vb/nb
	if se2 == 0 {
		return TTestResult{}, errors.New("stats: t-test zero variance")
	}
	t := (ma - mb) / math.Sqrt(se2)
	df := se2 * se2 / (va*va/(na*na*(na-1)) + vb*vb/(nb*nb*(nb-1)))
	p := 2 * studentTCDFUpper(math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p}, nil
}

// studentTCDFUpper returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function.
func studentTCDFUpper(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using `rounds`
// resamples driven by the deterministic next function (return a value in
// [0, n); pass a seeded RNG's IntN).
func BootstrapCI(xs []float64, confidence float64, rounds int, next func(n int) int) (lo, hi float64, err error) {
	if len(xs) < 2 {
		return 0, 0, ErrInsufficientData
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, errors.New("stats: confidence must be in (0,1)")
	}
	if rounds < 10 {
		return 0, 0, errors.New("stats: need at least 10 bootstrap rounds")
	}
	means := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		var s float64
		for i := 0; i < len(xs); i++ {
			s += xs[next(len(xs))]
		}
		means[r] = s / float64(len(xs))
	}
	alpha := (1 - confidence) / 2 * 100
	return Percentile(means, alpha), Percentile(means, 100-alpha), nil
}
