package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	N      int
}

// NewHistogram creates a histogram with the given number of bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records a value.
func (h *Histogram) Add(v float64) {
	h.N++
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx >= len(h.Counts) { // guard against float edge cases
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// AddAll records every value in vs.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Density returns the proportion of in-range samples falling in bin i.
func (h *Histogram) Density(i int) float64 {
	in := h.N - h.Under - h.Over
	if in == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(in)
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Render draws a simple ASCII bar chart, one row per bin, with the given
// maximum bar width. Useful for figure reproduction on a terminal.
func (h *Histogram) Render(width int) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%10.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// ConfusionMatrix accumulates classifier predictions for k classes.
type ConfusionMatrix struct {
	K     int
	Cells []int // row = true label, col = predicted
}

// NewConfusionMatrix creates a k-class confusion matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	return &ConfusionMatrix{K: k, Cells: make([]int, k*k)}
}

// Add records one prediction.
func (c *ConfusionMatrix) Add(trueLabel, predicted int) {
	c.Cells[trueLabel*c.K+predicted]++
}

// At returns the count for (true, predicted).
func (c *ConfusionMatrix) At(trueLabel, predicted int) int {
	return c.Cells[trueLabel*c.K+predicted]
}

// Total returns the number of recorded predictions.
func (c *ConfusionMatrix) Total() int {
	t := 0
	for _, v := range c.Cells {
		t += v
	}
	return t
}

// Accuracy returns the fraction of correct predictions.
func (c *ConfusionMatrix) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.K; i++ {
		correct += c.At(i, i)
	}
	return float64(correct) / float64(t)
}

// ClassRecall returns recall for one class (0 if the class never appears).
func (c *ConfusionMatrix) ClassRecall(label int) float64 {
	row := 0
	for j := 0; j < c.K; j++ {
		row += c.At(label, j)
	}
	if row == 0 {
		return 0
	}
	return float64(c.At(label, label)) / float64(row)
}

// TopKAccuracy computes top-k accuracy from per-sample score vectors.
// scores[i][c] is the score for class c on sample i.
func TopKAccuracy(scores [][]float64, labels []int, k int) float64 {
	if len(scores) == 0 {
		return 0
	}
	correct := 0
	for i, sv := range scores {
		if rankOf(sv, labels[i]) < k {
			correct++
		}
	}
	return float64(correct) / float64(len(scores))
}

// rankOf returns how many classes strictly outscore the target label (its
// 0-based rank). Ties are broken pessimistically against the target when the
// competing index is smaller, matching argsort-stable behaviour.
func rankOf(scores []float64, label int) int {
	target := scores[label]
	rank := 0
	for c, s := range scores {
		if s > target || (s == target && c < label) {
			rank++
		}
	}
	return rank
}

// Summary holds mean ± std in percent, as reported in the paper's tables.
type Summary struct {
	Mean float64
	Std  float64
}

// Summarize converts a slice of accuracy fractions into a percent Summary.
func Summarize(accs []float64) Summary {
	return Summary{Mean: 100 * Mean(accs), Std: 100 * StdDev(accs)}
}

func (s Summary) String() string {
	return fmt.Sprintf("%.1f±%.1f", s.Mean, s.Std)
}

// NormalizeMax divides xs by its maximum value, as the paper does when
// plotting Figure 4. It returns a new slice; the input is unchanged. A zero
// max returns a copy unchanged.
func NormalizeMax(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m := Max(xs)
	if m == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / m
	}
	return out
}

// NormalizeMaxInto is NormalizeMax with caller-owned output; dst is grown
// as needed (dst == xs normalizes in place). Returns the result slice.
func NormalizeMaxInto(dst, xs []float64) []float64 {
	if cap(dst) < len(xs) {
		dst = make([]float64, len(xs))
	}
	dst = dst[:len(xs)]
	m := Max(xs)
	if m == 0 {
		copy(dst, xs)
		return dst
	}
	for i, x := range xs {
		dst[i] = x / m
	}
	return dst
}

// ZScore standardizes xs to zero mean, unit variance. Zero-variance input
// returns all zeros.
func ZScore(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m, sd := Mean(xs), StdDev(xs)
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// ZScoreInto is ZScore with caller-owned output; dst is grown as needed
// (dst == xs standardizes in place). Returns the result slice.
func ZScoreInto(dst, xs []float64) []float64 {
	if cap(dst) < len(xs) {
		dst = make([]float64, len(xs))
	}
	dst = dst[:len(xs)]
	// One fewer pass than Mean+StdDev: StdDev's Variance recomputes the
	// mean internally, so reuse m in its sum-of-squares loop (the result
	// is bit-identical — Mean is deterministic).
	m := Mean(xs)
	var sd float64
	if len(xs) >= 2 {
		var ss float64
		for _, x := range xs {
			d := x - m
			ss += d * d
		}
		sd = math.Sqrt(ss / float64(len(xs)-1))
	}
	if sd == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, x := range xs {
		dst[i] = (x - m) / sd
	}
	return dst
}

// MovingAverage smooths xs with a centered window of the given width.
func MovingAverage(xs []float64, window int) []float64 {
	return MovingAverageInto(nil, xs, window)
}

// MovingAverageInto is MovingAverage with caller-owned output; dst is
// grown as needed and must not alias xs (the centered window reads
// neighbours after they would have been overwritten).
func MovingAverageInto(dst, xs []float64, window int) []float64 {
	if cap(dst) < len(xs) {
		dst = make([]float64, len(xs))
	}
	dst = dst[:len(xs)]
	if window <= 1 {
		copy(dst, xs)
		return dst
	}
	out := dst
	half := window / 2
	edge := func(i int) {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(xs) {
			hi = len(xs)
		}
		var s float64
		for j := lo; j < hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo)
	}
	// Interior points all see the full centered window, so sum a
	// fixed-width slice with no clamping — the clamped edge handling only
	// runs for the `half` points at each end. Summation order matches the
	// clamped loop exactly, so results are bit-identical.
	den := float64(2*half + 1)
	lim := len(xs) - half
	for i := 0; i < len(xs) && i < half; i++ {
		edge(i)
	}
	for i := half; i < lim; i++ {
		var s float64
		for _, v := range xs[i-half : i+half+1] {
			s += v
		}
		out[i] = s / den
	}
	for i := max(lim, half); i < len(xs); i++ {
		edge(i)
	}
	return out
}

// ArgMax returns the index of the largest element (first on ties), -1 for
// empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}
