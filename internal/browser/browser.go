// Package browser models the web browsers from Table 1: their secure
// timers, their page-load time dilation, and the page-load engine that
// converts a website profile into scheduled device interrupts, deferred
// softirqs, CPU bursts, and memory traffic on a simulated machine.
package browser

import (
	"fmt"

	"repro/internal/clockface"
	"repro/internal/sim"
)

// Browser identifies the browsers evaluated in the paper.
type Browser uint8

// Evaluated browsers (versions from Table 1).
const (
	Chrome     Browser = iota // Chrome 92
	Firefox                   // Firefox 91
	Safari                    // Safari 14
	TorBrowser                // Tor Browser 10
)

func (b Browser) String() string {
	switch b {
	case Chrome:
		return "chrome-92"
	case Firefox:
		return "firefox-91"
	case Safari:
		return "safari-14"
	case TorBrowser:
		return "tor-browser-10"
	default:
		return fmt.Sprintf("browser(%d)", uint8(b))
	}
}

// Timer returns the browser's performance.now() implementation.
func (b Browser) Timer(seed uint64) clockface.Timer {
	switch b {
	case Chrome:
		return clockface.Chrome(seed)
	case Firefox:
		return clockface.Firefox(seed)
	case Safari:
		return clockface.Safari()
	case TorBrowser:
		return clockface.Tor()
	default:
		return clockface.Precise{}
	}
}

// TraceDuration returns the paper's trace length for this browser: 15 s,
// except 50 s for Tor Browser whose pages load noticeably slower (§4.1).
func (b Browser) TraceDuration() sim.Duration {
	if b == TorBrowser {
		return 50 * sim.Second
	}
	return 15 * sim.Second
}

// Dilation stretches website activity timelines for browser-engine reasons
// (JIT tiers, scheduling). Tor Browser's much larger slowdown comes from
// the circuit model in internal/tornet, applied per visit, not from this
// static factor.
func (b Browser) Dilation() float64 {
	switch b {
	case Firefox:
		return 1.05
	case Safari:
		return 0.97
	case TorBrowser:
		return 1.4 // JIT disabled, security extensions
	default:
		return 1.0
	}
}

// VisitJitter scales per-visit profile variance beyond the network path:
// Tor Browser adds content-level randomness (letterboxing, disabled
// caches force full refetches with varying CDN nodes).
func (b Browser) VisitJitter() float64 {
	if b == TorBrowser {
		return 2.0
	}
	return 1.0
}
