package browser

import (
	"repro/internal/interrupt"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/website"
)

// memChunk is the granularity at which pulse memory traffic and governor
// load are applied; fine enough to shape 5 ms trace samples, coarse enough
// to keep the event count low.
const memChunk = 5 * sim.Millisecond

// LoadPage schedules all machine activity for one visit to a website
// profile on machine m, clipped to [0, until]. The visit should already be
// Instantiate()d with per-visit jitter. Dilation stretches the profile's
// timeline (Tor Browser).
//
// Each pulse spawns independent Poisson event streams:
//
//	network packets → NIC IRQs (+NET_RX softirq at the IRQ's core)
//	render events   → GPU IRQs (+tasklets)
//	JS bursts       → scheduler CPU bursts (resched IPIs, DVFS load)
//	deferred work   → softirqs placed by kernel policy
//	memory traffic  → LLC eviction of attacker lines, TLB shootdowns
func LoadPage(m *kernel.Machine, visit website.Profile, dilation float64, until sim.Time) {
	if dilation <= 0 {
		dilation = 1
	}
	rng := m.RNG().Fork("pageload/" + visit.Domain)
	for i, pl := range visit.Pulses {
		schedulePulse(m, pl, dilation, until, rng.Fork(pulseName(i)))
	}
}

func pulseName(i int) string { return string(rune('a'+i%26)) + "pulse" }

func schedulePulse(m *kernel.Machine, pl website.Pulse, dilation float64, until sim.Time, rng *sim.Stream) {
	start := sim.Time(float64(pl.Start) * dilation)
	end := sim.Time(float64(pl.End()) * dilation)
	if end > until {
		end = until
	}
	if start >= end {
		return
	}
	// Dilation stretches the pulse but the same total bytes/work flow, so
	// rates scale down with it.
	netRate := pl.NetPacketsPerSec / dilation
	gfxRate := pl.GfxPerSec / dilation
	cpuRate := pl.CPUBurstsPerSec / dilation
	softRate := pl.SoftirqsPerSec / dilation
	memRate := pl.MemLinesPerSec / dilation

	poissonStream(m, start, end, netRate, rng.Fork("net"), func() {
		m.Ctl.RaiseIRQ(interrupt.NetRX)
	})
	poissonStream(m, start, end, gfxRate, rng.Fork("gfx"), func() {
		m.Ctl.RaiseIRQ(interrupt.Graphics)
	})
	burstRNG := rng.Fork("cpu")
	poissonStream(m, start, end, cpuRate, burstRNG, func() {
		d := sim.Duration(float64(pl.CPUBurstLen) * burstRNG.LogNormal(0, 0.3))
		m.Sched.VictimBurst(d, pl.Load)
	})
	softRNG := rng.Fork("soft")
	poissonStream(m, start, end, softRate, softRNG, func() {
		switch {
		case softRNG.Bernoulli(0.5):
			m.Ctl.DeferSoftirq(interrupt.SoftTimer, kernel.VictimCore)
		case softRNG.Bernoulli(0.6):
			m.Ctl.DeferSoftirq(interrupt.SoftTasklet, kernel.VictimCore)
		default:
			m.Ctl.DeferSoftirq(interrupt.SoftRCU, kernel.VictimCore)
		}
	})

	// Memory traffic and governor load apply in fixed chunks.
	linesPerChunk := memRate * memChunk.Seconds()
	memRNG := rng.Fork("mem")
	for at := start; at < end; at += memChunk {
		at := at
		m.Eng.Schedule(at, func() {
			m.Sched.VictimMemory(linesPerChunk * memRNG.LogNormal(0, 0.1))
			m.Gov.ReportLoad(pl.Load)
		})
	}
}

// poissonStream schedules events at exponential inter-arrival times with
// the given mean rate (events/second of virtual time) over [start, end).
func poissonStream(m *kernel.Machine, start, end sim.Time, rate float64, rng *sim.Stream, fire func()) {
	if rate <= 0 {
		return
	}
	mean := sim.Duration(float64(sim.Second) / rate)
	var step func()
	step = func() {
		if m.Eng.Now() >= end {
			return
		}
		fire()
		m.Eng.After(rng.DurExp(mean), step)
	}
	m.Eng.Schedule(start+rng.DurExp(mean), step)
}
