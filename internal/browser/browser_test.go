package browser

import (
	"testing"

	"repro/internal/interrupt"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/website"
)

func TestBrowserPresets(t *testing.T) {
	if Chrome.String() != "chrome-92" || TorBrowser.String() != "tor-browser-10" {
		t.Fatal("names")
	}
	if Browser(9).String() == "" {
		t.Fatal("unknown browser should render")
	}
	if Chrome.TraceDuration() != 15*sim.Second {
		t.Fatal("chrome trace duration")
	}
	if TorBrowser.TraceDuration() != 50*sim.Second {
		t.Fatal("tor trace duration")
	}
	if TorBrowser.Dilation() <= 1.2 {
		t.Fatal("tor should dilate (JIT off); the circuit model adds the rest")
	}
	if TorBrowser.VisitJitter() <= Firefox.VisitJitter() {
		t.Fatal("tor visit jitter")
	}
	if Chrome.Dilation() != 1.0 {
		t.Fatal("chrome dilation")
	}
	for _, b := range []Browser{Chrome, Firefox, Safari, TorBrowser} {
		if b.Timer(1) == nil {
			t.Fatalf("%v has no timer", b)
		}
	}
	if Browser(9).Timer(0).Name() != "precise" {
		t.Fatal("unknown browser fallback timer")
	}
}

func TestLoadPageGeneratesActivity(t *testing.T) {
	m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 42})
	visit := website.ProfileFor("amazon.com").Instantiate(m.RNG().Fork("v"))
	LoadPage(m, visit, 1.0, 15*sim.Second)
	m.Eng.Run(15 * sim.Second)

	if n := m.Ctl.TotalCount(interrupt.NetRX); n < 1000 {
		t.Fatalf("net IRQs = %d, want >= 1000 for amazon", n)
	}
	if n := m.Ctl.TotalCount(interrupt.Graphics); n < 50 {
		t.Fatalf("gfx IRQs = %d", n)
	}
	if n := m.Ctl.TotalCount(interrupt.SoftTimer); n < 100 {
		t.Fatalf("soft timers = %d", n)
	}
	if m.Cache.Resident() >= float64(m.Cache.Geometry().Lines()) {
		t.Fatal("victim memory never evicted attacker lines")
	}
	if m.Ctl.TotalCount(interrupt.IPIResched) < 20 {
		t.Fatal("bursts should produce resched IPIs")
	}
}

func TestLoadPageRespectsUntil(t *testing.T) {
	m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 43})
	visit := website.ProfileFor("amazon.com").Instantiate(m.RNG().Fork("v"))
	LoadPage(m, visit, 1.0, 3*sim.Second)
	m.Eng.Run(3 * sim.Second)
	atThree := m.Ctl.TotalCount(interrupt.NetRX)
	m.Eng.Run(10 * sim.Second)
	after := m.Ctl.TotalCount(interrupt.NetRX)
	// Baseline noise continues but page streams must have stopped:
	// allow only the idle trickle.
	if after-atThree > atThree/2+50 {
		t.Fatalf("activity after until: %d → %d", atThree, after)
	}
}

func TestLoadPageActivityFollowsProfileShape(t *testing.T) {
	// nytimes front-loads activity; interrupts in the first 4 s must
	// dominate those in the last 5 s.
	m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 44})
	visit := website.ProfileFor("nytimes.com").Instantiate(m.RNG().Fork("v"))
	LoadPage(m, visit, 1.0, 15*sim.Second)
	m.Eng.Run(4 * sim.Second)
	early := m.Ctl.TotalCount(interrupt.NetRX)
	m.Eng.Run(10 * sim.Second)
	preTail := m.Ctl.TotalCount(interrupt.NetRX)
	m.Eng.Run(15 * sim.Second)
	late := m.Ctl.TotalCount(interrupt.NetRX) - preTail
	if early < 5*late {
		t.Fatalf("nytimes: early=%d late=%d, want front-loaded", early, late)
	}
}

func TestLoadPageDilationStretches(t *testing.T) {
	activityAt3s := func(dilation float64) uint64 {
		m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 45})
		visit := website.ProfileFor("amazon.com").Instantiate(m.RNG().Fork("v"))
		LoadPage(m, visit, dilation, 50*sim.Second)
		m.Eng.Run(3 * sim.Second)
		return m.Ctl.TotalCount(interrupt.NetRX)
	}
	fast, slow := activityAt3s(1.0), activityAt3s(2.8)
	if slow >= fast {
		t.Fatalf("dilation should spread activity: fast=%d slow=%d", fast, slow)
	}
	// Zero dilation falls back to 1.
	m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 46})
	visit := website.ProfileFor("amazon.com").Instantiate(m.RNG().Fork("v"))
	LoadPage(m, visit, 0, 15*sim.Second)
	m.Eng.Run(2 * sim.Second)
	if m.Ctl.TotalCount(interrupt.NetRX) == 0 {
		t.Fatal("zero dilation should behave like 1")
	}
}

func TestLoadPageDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) uint64 {
		m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: seed})
		visit := website.ProfileFor("github.com").Instantiate(m.RNG().Fork("v"))
		LoadPage(m, visit, 1.0, 10*sim.Second)
		m.Eng.Run(10 * sim.Second)
		return m.Ctl.TotalCount(interrupt.NetRX)
	}
	if run(7) != run(7) {
		t.Fatal("same seed should give identical activity")
	}
	if run(7) == run(8) {
		t.Fatal("different seeds should jitter activity")
	}
}
