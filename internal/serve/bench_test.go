package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/sim"
)

// benchModel is one frozen model measured by the serving benchmarks, at
// both inference tiers.
type benchModel struct {
	f32  *ml.CompiledModel
	int8 *ml.QuantizedModel
}

func (m *benchModel) tier(name string) ml.Frozen {
	if name == "int8" {
		return m.int8
	}
	return m.f32
}

// benchState shares the frozen models and trace corpus across every
// serving benchmark:
//
//   - logreg100: the paper's logistic-regression head at the full
//     100-site closed world (one dense 300→100 layer). Batch-1 scoring
//     re-streams the whole weight panel per request, so this is the
//     regime where coalescing pays hardest.
//   - papernet: the small CNN+LSTM at 7 classes, where per-trace kernel
//     time dominates and micro-batching has far less headroom.
//
// The traces are three times the model input length, so every request
// exercises the full downsample+smooth+zscore prep.
type benchState struct {
	logreg100 benchModel
	papernet  benchModel
	prep      ml.Preprocessor
	inLen     int
	traces    [][]float64
}

var (
	benchOnce sync.Once
	bench     benchState
	benchErr  error
)

func freezeBench(model *ml.Sequential, calib []*ml.Tensor) (benchModel, error) {
	cm, err := ml.Compile(model)
	if err != nil {
		return benchModel{}, err
	}
	qm, err := ml.Quantize(cm, calib)
	if err != nil {
		return benchModel{}, err
	}
	return benchModel{f32: cm, int8: qm}, nil
}

func serveBenchState(b *testing.B) *benchState {
	benchOnce.Do(func() {
		rng := sim.NewStream(11, "serve-bench")
		traces := make([][]float64, 64)
		for i := range traces {
			xs := make([]float64, 900)
			for j := range xs {
				xs[j] = rng.Uniform(0, 50)
			}
			traces[i] = xs
		}
		prep := ml.DefaultPreprocessor
		calib := make([]*ml.Tensor, 8)
		for i := range calib {
			calib[i] = ml.FromSeries(prep.Apply(traces[i]))
		}

		cnn, err := ml.PaperNet(7, 300, 5, 16, 16, 0.2)
		if err != nil {
			benchErr = err
			return
		}
		papernet, err := freezeBench(cnn, calib)
		if err != nil {
			benchErr = err
			return
		}
		head := &ml.Sequential{Layers: []ml.Layer{ml.NewDense(rng, 300, 100)}}
		logreg100, err := freezeBench(head, calib)
		if err != nil {
			benchErr = err
			return
		}
		bench = benchState{logreg100: logreg100, papernet: papernet,
			prep: prep, inLen: 300, traces: traces}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return &bench
}

func (s *benchState) model(name string) *benchModel {
	if name == "papernet" {
		return &s.papernet
	}
	return &s.logreg100
}

// runLeg drives b.N closed-loop requests through classify and reports
// req/s plus client-observed p50/p99 as benchmark metrics, which
// cmd/benchjson carries into BENCH_serve.json unchanged.
func runLeg(b *testing.B, classify ClassifyFunc, traces [][]float64, conc int) {
	b.Helper()
	// Warm pools, arenas, and scheduler state outside the timer.
	warm, err := RunLoad(LoadOpts{Classify: classify, Traces: traces, Conc: conc, Requests: 4 * conc})
	if err != nil || warm.Errors > 0 {
		b.Fatalf("warmup: %v (%+v)", err, warm)
	}
	b.ResetTimer()
	res, err := RunLoad(LoadOpts{Classify: classify, Traces: traces, Conc: conc, Requests: b.N})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors > 0 {
		b.Fatalf("%d failed requests: %+v", res.Errors, res)
	}
	b.ReportMetric(res.Throughput, "req/s")
	b.ReportMetric(res.P50us, "p50-µs")
	b.ReportMetric(res.P99us, "p99-µs")
	b.ReportMetric(float64(res.Overloads), "shed/op")
}

// BenchmarkServeThroughput measures sustained classifications/sec for the
// admission-controlled micro-batching server against the unbatched server
// (MaxBatch 1: same queue, one-wide scoring) and the naive
// one-request-one-PredictBatch path, per model and tier. The coalesced
// and naive legs run back-to-back on the same frozen model and trace
// corpus — the comparison BENCH_serve.json commits.
func BenchmarkServeThroughput(b *testing.B) {
	st := serveBenchState(b)
	conc := 256
	for _, model := range []string{"logreg100", "papernet"} {
		bm := st.model(model)
		for _, tier := range []string{"int8", "f32"} {
			frozen := bm.tier(tier)
			b.Run(fmt.Sprintf("%s/coalesced/%s", model, tier), func(b *testing.B) {
				obs.Default.Reset()
				s, err := New(Config{Model: frozen, Prep: st.prep, InputLen: st.inLen,
					QueueDepth: 2 * conc, BatchWait: 200 * time.Microsecond})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Stop()
				runLeg(b, s.Classify, st.traces, conc)
			})
			b.Run(fmt.Sprintf("%s/unbatched/%s", model, tier), func(b *testing.B) {
				obs.Default.Reset()
				s, err := New(Config{Model: frozen, Prep: st.prep, InputLen: st.inLen,
					MaxBatch: 1, QueueDepth: 2 * conc})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Stop()
				runLeg(b, s.Classify, st.traces, conc)
			})
			b.Run(fmt.Sprintf("%s/naive/%s", model, tier), func(b *testing.B) {
				obs.Default.Reset()
				runLeg(b, NaiveClassifier(frozen, st.prep, st.inLen), st.traces, conc)
			})
		}
	}
}

// BenchmarkServeLatency measures request latency at low offered load,
// where batches rarely fill and the fill-or-timeout policy sets the
// floor: conc=1 is the pure unloaded round-trip, conc=32 a lightly
// contended one. Greedy close (BatchWait 0) keeps the idle path from
// taxing latency with the full wait.
func BenchmarkServeLatency(b *testing.B) {
	st := serveBenchState(b)
	frozen := st.logreg100.int8
	for _, conc := range []int{1, 32} {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			obs.Default.Reset()
			s, err := New(Config{Model: frozen, Prep: st.prep, InputLen: st.inLen,
				QueueDepth: 2 * conc})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Stop()
			runLeg(b, s.Classify, st.traces, conc)
		})
	}
}

// BenchmarkServeSweep maps the serving configuration space — tier ×
// batch-close wait × worker count — on the logreg100 model, feeding the
// EXPERIMENTS.md table. On a single-core host extra workers cannot add
// throughput (they only split the same CPU), which the sweep documents.
func BenchmarkServeSweep(b *testing.B) {
	st := serveBenchState(b)
	conc := 256
	for _, tier := range []string{"int8", "f32"} {
		frozen := st.logreg100.tier(tier)
		for _, bw := range []time.Duration{0, 200 * time.Microsecond} {
			for _, workers := range []int{1, 2} {
				name := fmt.Sprintf("%s/batchwait=%v/workers=%d", tier, bw, workers)
				b.Run(name, func(b *testing.B) {
					obs.Default.Reset()
					s, err := New(Config{Model: frozen, Prep: st.prep, InputLen: st.inLen,
						Workers: workers, QueueDepth: 2 * conc, BatchWait: bw})
					if err != nil {
						b.Fatal(err)
					}
					defer s.Stop()
					runLeg(b, s.Classify, st.traces, conc)
				})
			}
		}
	}
}
