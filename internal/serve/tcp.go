package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Serve accepts connections on ln and answers classify requests against
// the server until the listener is closed. Each connection gets a reader
// that decodes frames and a single writer goroutine that serializes
// responses; requests run concurrently, so one slow classification never
// heads-of-line-blocks a pipelined connection.
func (s *Server) Serve(ln net.Listener) error {
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		c, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			s.handleConn(c)
		}()
	}
}

func (s *Server) handleConn(c net.Conn) {
	defer c.Close()
	out := make(chan []byte, 256)
	var inflight sync.WaitGroup

	// Writer: the only goroutine that touches the socket's write side.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(c)
		for frame := range out {
			if _, err := bw.Write(frame); err != nil {
				return
			}
			// Flush when the queue momentarily drains so pipelined bursts
			// coalesce into few syscalls but a lone request is not delayed.
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					return
				}
			}
		}
		bw.Flush()
	}()

	br := bufio.NewReader(c)
	var hdr [4]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxFrame {
			break // protocol violation: drop the connection
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		id, xs, err := DecodeRequest(payload, nil)
		if err != nil {
			out <- AppendResponse(nil, id, statusBadRequest, 0, 0)
			continue
		}
		inflight.Add(1)
		go func(id uint64, xs []float64) {
			defer inflight.Done()
			res, err := s.Classify(xs)
			frame := AppendResponse(make([]byte, 0, 4+respPayloadLen),
				id, statusError(err), uint16(res.Label), float32(res.Prob))
			out <- frame
		}(id, xs)
	}
	inflight.Wait()
	close(out)
	<-writerDone
}

// Client is a pipelining TCP client for the serving protocol. Classify is
// safe for concurrent use from many goroutines; requests share one
// connection and responses are matched back by id.
type Client struct {
	conn net.Conn

	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte

	nextID atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]chan clientResp
	readErr error
	closed  bool
}

type clientResp struct {
	res Result
	err error
}

// Dial connects a client to a serving daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(map[uint64]chan clientResp),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	var hdr [4]byte
	payload := make([]byte, respPayloadLen)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.failAll(err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if int(n) != respPayloadLen {
			c.failAll(ErrBadMessage)
			return
		}
		if _, err := io.ReadFull(br, payload); err != nil {
			c.failAll(err)
			return
		}
		id, status, label, prob, err := DecodeResponse(payload)
		if err != nil {
			c.failAll(err)
			return
		}
		c.pmu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if ch != nil {
			ch <- clientResp{Result{Label: int(label), Prob: float64(prob)}, errStatus(status)}
		}
	}
}

func (c *Client) failAll(err error) {
	c.pmu.Lock()
	if c.closed {
		err = ErrServerClosed
	}
	c.readErr = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- clientResp{err: err}
	}
	c.pmu.Unlock()
}

// Classify sends one trace and blocks for its response. Server-side
// admission errors come back as the same sentinels the in-process path
// returns (ErrOverloaded, ErrDeadlineExceeded, ErrServerClosed).
func (c *Client) Classify(xs []float64) (Result, error) {
	id := c.nextID.Add(1)
	ch := make(chan clientResp, 1)
	c.pmu.Lock()
	if err := c.readErr; err != nil {
		c.pmu.Unlock()
		return Result{}, err
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	c.wbuf = AppendRequest(c.wbuf[:0], id, xs)
	_, err := c.bw.Write(c.wbuf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return Result{}, err
	}
	r := <-ch
	return r.res, r.err
}

// Close tears the connection down; in-flight calls fail with
// ErrServerClosed.
func (c *Client) Close() error {
	c.pmu.Lock()
	c.closed = true
	c.pmu.Unlock()
	return c.conn.Close()
}
