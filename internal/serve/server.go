// Package serve is the fingerprint-serving layer: a long-running daemon
// that loads one frozen model (compiled f32 or int8 — see ml.Frozen) and
// classifies traces for many concurrent callers at high, predictable
// throughput.
//
// The core is a micro-batching request pump. Callers never touch the model:
// Classify preprocesses the trace into a pooled request slot and submits it
// to a bounded queue; a small pool of inference workers drains the queue,
// coalescing concurrent requests into dynamic micro-batches aimed at the
// compiled path's fused-GEMM width (ml.MicroBatchMax). One batched score
// amortizes the per-call costs — scratch-arena traffic, head-GEMM setup,
// scheduler handoffs — that a naive one-request-one-PredictBatch design
// pays per trace.
//
// Admission control is explicit rather than emergent: a full queue sheds
// new work immediately with ErrOverloaded (callers see back-pressure as an
// error, not unbounded latency), and requests whose deadline has passed
// are dropped before they occupy a batch slot, so a latency spike cannot
// cascade into wasted inference on answers nobody is waiting for.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ml"
	"repro/internal/obs"
)

// Errors returned by Classify. They are sentinel values: transports map
// them onto wire status codes and load generators count them by identity.
var (
	// ErrOverloaded is returned when the submission queue is full — the
	// admission-control signal that the server is saturated.
	ErrOverloaded = errors.New("serve: overloaded: submission queue full")
	// ErrDeadlineExceeded is returned when a request's deadline expired
	// before a worker could score it.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded before scoring")
	// ErrServerClosed is returned for submissions after Stop.
	ErrServerClosed = errors.New("serve: server closed")
)

// Config describes a serving instance.
type Config struct {
	// Model is the frozen inference artifact (required): a compiled f32 or
	// int8-quantized model. The model is shared; each worker opens its own
	// pinned-arena session.
	Model ml.Frozen
	// Prep is applied to every submitted trace before scoring.
	Prep ml.Preprocessor
	// InputLen, when positive, is the model's trained input length:
	// preprocessed traces are zero-padded or trimmed to it, exactly as
	// batch scoring does (ml.Freezer.InputLen). It also sizes pooled
	// request buffers.
	InputLen int
	// Workers is the number of inference workers (default 1). On a
	// single-core host one worker with wide batches is usually optimal.
	Workers int
	// MaxBatch caps coalesced batch width (default ml.MicroBatchMax).
	// MaxBatch = 1 degenerates to unbatched serving — the baseline the
	// benchmarks compare against.
	MaxBatch int
	// BatchWait bounds how long a worker holds an open batch waiting for
	// it to fill once the first request arrived. Zero means greedy: score
	// whatever is queued right now without waiting.
	BatchWait time.Duration
	// QueueDepth bounds the submission queue; submissions beyond it shed
	// with ErrOverloaded (default 4 × Workers × MaxBatch).
	QueueDepth int
	// Deadline, when positive, stamps every request with submit-time +
	// Deadline; requests still queued past it are dropped with
	// ErrDeadlineExceeded before occupying a batch slot.
	Deadline time.Duration
	// Par is the intra-op GEMM worker count per scoring call (default 1:
	// serving parallelism comes from concurrent requests, not intra-op).
	Par int
}

// Result is one classification outcome.
type Result struct {
	Label int     // argmax class
	Prob  float64 // probability of Label
}

// slot is one pooled in-flight request. Buffers persist across uses, so
// the steady-state submit path performs zero heap allocations.
type slot struct {
	xs    []float64 // preprocessed trace (ApplyInto target)
	tmp   []float64 // smoothing intermediate
	x     ml.Tensor // header aliasing xs — rebuilt per use, never shared
	probs []float64 // class probabilities (PredictBatchInto row)

	enq      time.Time
	deadline time.Time
	span     *obs.Span

	res  Result
	err  error
	done chan struct{} // buffered(1): worker signals completion
}

// session is the scoring seam the workers drive. *ml.InferSession
// satisfies it; tests substitute blocking fakes to exercise admission
// control without a model.
type session interface {
	PredictBatchInto(X []*ml.Tensor, par int, out [][]float64)
	Close()
}

// Server coalesces concurrent Classify calls into micro-batches over a
// pool of inference workers. Safe for concurrent use.
type Server struct {
	cfg   Config
	queue chan *slot
	slots sync.Pool
	seq   atomic.Uint64 // request sequence, drives span sampling

	openSession func() session // test seam; defaults to Model.NewSession

	// Episode flags for the flight recorder: hot paths record state
	// *transitions* (entering/leaving an overload or deadline-shedding
	// episode), not every shed, so a saturated server emits two events per
	// episode instead of thousands per second.
	overloadEp atomic.Bool
	deadlineEp atomic.Bool

	mu      sync.RWMutex // guards stopped vs. queue close
	stopped bool
	wg      sync.WaitGroup
}

// Observability handles. Histograms are microsecond-scaled with 1-2-5
// decade bounds so p50/p99 interpolation stays tight from ~1µs to ~1s.
var (
	cRequests  = obs.Default.Counter("serve.requests")
	cBatches   = obs.Default.Counter("serve.batches")
	cShedQueue = obs.Default.Counter("serve.shed_overload")
	cShedDead  = obs.Default.Counter("serve.shed_deadline")

	usBounds = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500,
		1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6}

	hQueueWait = obs.Default.Histogram("serve.queue_wait_us", usBounds...)
	hE2E       = obs.Default.Histogram("serve.e2e_us", usBounds...)
	hBatchSize = obs.Default.Histogram("serve.batch_size",
		1, 2, 4, 8, 12, 16, 24, 32, 48, 64)

	// Windowed views of the same signals: a 10 s window (1 s epochs) feeding
	// live progress lines, and a 1 m window (5 s epochs) for trend. The
	// write cost per request is one atomic index load plus the atomic adds a
	// cumulative instrument already pays — no clock read, no allocation.
	wRequests   = obs.Default.RollingCounter("serve.win.requests", 10*time.Second, 10)
	wE2E        = obs.Default.RollingHistogram("serve.win.e2e_us", 10*time.Second, 10, usBounds...)
	wRequests1m = obs.Default.RollingCounter("serve.win1m.requests", time.Minute, 12)
	wE2E1m      = obs.Default.RollingHistogram("serve.win1m.e2e_us", time.Minute, 12, usBounds...)
)

// ProgressLine renders the serving layer's live view for obs.StartReporter:
// request rate and end-to-end latency quantiles over the last 10 s window,
// then the cumulative totals the lifetime counters hold.
func ProgressLine() string {
	hs := wE2E.Snapshot()
	return fmt.Sprintf(
		"win10s %.1f req/s p50=%.0fµs p95=%.0fµs p99=%.0fµs | total req=%d batches=%d shed=%d/%d",
		wRequests.Rate(), hs.P50, hs.P95, hs.P99,
		cRequests.Value(), cBatches.Value(), cShedQueue.Value(), cShedDead.Value())
}

// spanSampleMask samples one request span per 1024 submissions: enough to
// see representative request timelines in a manifest without the tracer's
// buffer (or its lock) becoming the hot path.
const spanSampleMask = 1<<10 - 1

// New validates cfg, builds the server, and starts its workers.
func New(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// newServer builds without starting workers — the white-box seam that
// lets tests drive batch assembly and admission directly.
func newServer(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("serve: Config.Model is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = ml.MicroBatchMax
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers * cfg.MaxBatch
	}
	if cfg.Par <= 0 {
		cfg.Par = 1
	}
	hint := cfg.InputLen
	if hint < 512 {
		hint = 512
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *slot, cfg.QueueDepth),
	}
	s.slots.New = func() any {
		return &slot{
			xs:   make([]float64, 0, hint),
			tmp:  make([]float64, 0, hint),
			done: make(chan struct{}, 1),
		}
	}
	s.openSession = func() session { return cfg.Model.NewSession() }
	return s, nil
}

func (s *Server) start() {
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
}

// Classify scores one trace, blocking until a worker answers or admission
// control sheds the request. values is not retained.
func (s *Server) Classify(values []float64) (Result, error) {
	sl := s.slots.Get().(*slot)
	if cap(sl.tmp) < len(values) {
		sl.tmp = make([]float64, 0, len(values))
	}
	sl.xs = s.cfg.Prep.ApplyInto(sl.xs, sl.tmp, values)
	if n := s.cfg.InputLen; n > 0 && len(sl.xs) != n {
		sl.xs = resize(sl.xs, n)
	}
	sl.x.Rows, sl.x.Cols, sl.x.Data = len(sl.xs), 1, sl.xs

	sl.enq = time.Now()
	if s.cfg.Deadline > 0 {
		sl.deadline = sl.enq.Add(s.cfg.Deadline)
	} else {
		sl.deadline = time.Time{}
	}
	cRequests.Inc()
	wRequests.Inc()
	wRequests1m.Inc()
	if s.seq.Add(1)&spanSampleMask == 0 {
		sl.span = obs.StartSpan(nil, "serve.request")
	} else {
		sl.span = nil
	}

	// The RLock pairs with Stop's exclusive section: a submission either
	// observes stopped or completes its send before the queue closes, so
	// no goroutine ever sends on a closed channel.
	s.mu.RLock()
	if s.stopped {
		s.mu.RUnlock()
		s.slots.Put(sl)
		return Result{}, ErrServerClosed
	}
	select {
	case s.queue <- sl:
		s.mu.RUnlock()
		if s.overloadEp.Load() && s.overloadEp.CompareAndSwap(true, false) {
			obs.Eventf("overload", "serve: recovered: queue accepting again")
		}
	default:
		s.mu.RUnlock()
		cShedQueue.Inc()
		if s.overloadEp.CompareAndSwap(false, true) {
			obs.Eventf("overload", "serve: queue full (depth %d): shedding with ErrOverloaded",
				s.cfg.QueueDepth)
		}
		sl.span.SetAttr("shed", "overload").End()
		s.slots.Put(sl)
		return Result{}, ErrOverloaded
	}

	<-sl.done
	res, err := sl.res, sl.err
	s.slots.Put(sl)
	return res, err
}

// Stop closes admission and waits for the workers to score everything
// already queued. Idempotent; concurrent Classify calls either complete
// or return ErrServerClosed.
func (s *Server) Stop() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// admit moves a dequeued slot into the open batch — unless its deadline
// already passed, in which case it is answered (and counted) immediately
// so it never occupies a batch slot.
func (s *Server) admit(sl *slot, batch []*slot) []*slot {
	now := time.Now()
	if !sl.deadline.IsZero() && now.After(sl.deadline) {
		cShedDead.Inc()
		if s.deadlineEp.CompareAndSwap(false, true) {
			obs.Eventf("deadline", "serve: deadline expired after %s queued (budget %s): dropping",
				now.Sub(sl.enq).Round(time.Microsecond), s.cfg.Deadline)
		}
		sl.err = ErrDeadlineExceeded
		sl.span.SetAttr("shed", "deadline").End()
		sl.done <- struct{}{}
		return batch
	}
	if s.deadlineEp.Load() && s.deadlineEp.CompareAndSwap(true, false) {
		obs.Eventf("deadline", "serve: recovered: requests meeting deadlines again")
	}
	hQueueWait.Observe(float64(now.Sub(sl.enq).Nanoseconds()) / 1e3)
	return append(batch, sl)
}

// worker drains the queue, assembling fill-or-timeout micro-batches and
// scoring them on a pinned-arena session.
func (s *Server) worker() {
	defer s.wg.Done()
	sess := s.openSession()
	defer sess.Close()

	maxB := s.cfg.MaxBatch
	batch := make([]*slot, 0, maxB)
	X := make([]*ml.Tensor, 0, maxB)
	out := make([][]float64, maxB)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}

	for {
		sl, ok := <-s.queue
		if !ok {
			return
		}
		batch = s.admit(sl, batch[:0])

		// Batch-close policy: fill to maxB, or give up after BatchWait
		// measured from the first arrival. BatchWait == 0 drains greedily —
		// whatever is queued right now forms the batch.
		//
		// Before either policy, drain cooperatively: yield the processor so
		// runnable submitters (typically the clients just answered by the
		// previous batch) can preprocess and enqueue, then sweep the queue
		// without ever parking. Parking in the select would instead wake
		// the worker once per submission — a full handoff per request,
		// which on a saturated single core costs more than the batching
		// saves. Two consecutive empty sweeps mean the remaining producers
		// are genuinely off-CPU, and the timed wait (if any) takes over.
		closed := false
		for idle := 0; len(batch) < maxB && idle < 2; {
			select {
			case sl2, ok2 := <-s.queue:
				if !ok2 {
					closed = true
				} else {
					batch = s.admit(sl2, batch)
					idle = 0
					continue
				}
			default:
				runtime.Gosched()
				idle++
			}
			if closed {
				break
			}
		}
		if !closed && s.cfg.BatchWait > 0 {
			timer.Reset(s.cfg.BatchWait)
		fill:
			for len(batch) < maxB {
				select {
				case sl2, ok2 := <-s.queue:
					if !ok2 {
						closed = true
						break fill
					}
					batch = s.admit(sl2, batch)
				case <-timer.C:
					break fill
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}

		if len(batch) > 0 {
			X = X[:0]
			for i, bsl := range batch {
				X = append(X, &bsl.x)
				out[i] = bsl.probs
			}
			sess.PredictBatchInto(X, s.cfg.Par, out[:len(batch)])
			cBatches.Inc()
			hBatchSize.Observe(float64(len(batch)))
			now := time.Now()
			for i, bsl := range batch {
				bsl.probs = out[i]
				bsl.res = argmax(out[i])
				bsl.err = nil
				e2e := float64(now.Sub(bsl.enq).Nanoseconds()) / 1e3
				hE2E.Observe(e2e)
				wE2E.Observe(e2e)
				wE2E1m.Observe(e2e)
				bsl.span.SetAttr("e2e_us", e2e).SetAttr("batch", len(batch)).End()
				bsl.done <- struct{}{}
			}
		}
		if closed {
			return
		}
	}
}

// resize zero-pads or trims xs to n in place (growing at most once per
// slot), matching the pad/trim batch scoring applies before a trained
// model.
func resize(xs []float64, n int) []float64 {
	if len(xs) > n {
		return xs[:n]
	}
	if cap(xs) < n {
		g := make([]float64, n, n)
		copy(g, xs)
		return g
	}
	old := len(xs)
	xs = xs[:n]
	for i := old; i < n; i++ {
		xs[i] = 0
	}
	return xs
}

// argmax reduces a probability row to its Result.
func argmax(probs []float64) Result {
	if len(probs) == 0 {
		return Result{Label: -1}
	}
	best := 0
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[best] {
			best = i
		}
	}
	return Result{Label: best, Prob: probs[best]}
}
