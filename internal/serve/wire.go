// Wire protocol: length-prefixed binary frames over TCP.
//
// Every message is one frame — a little-endian u32 payload length followed
// by the payload, capped at maxFrame so a hostile or corrupt length prefix
// can never drive allocation. Payloads:
//
//	classify request:  [type=1][id u64][n u32][n × f64]   (13 + 8n bytes)
//	classify response: [type=2][id u64][status u8][label u16][prob f32]
//
// All integers and floats are little-endian. ids are caller-chosen and
// echoed verbatim, so clients may pipeline arbitrarily many requests per
// connection and match responses out of order.
package serve

import (
	"encoding/binary"
	"errors"
	"math"
)

// maxFrame bounds a frame payload (1 MiB ≈ a 130k-point trace —
// far beyond any fingerprinting window).
const maxFrame = 1 << 20

// Message types.
const (
	msgClassify = 1
	msgResult   = 2
)

// Response status codes.
const (
	statusOK         = 0
	statusOverloaded = 1
	statusDeadline   = 2
	statusBadRequest = 3
	statusClosed     = 4
)

// Decode errors. Transports treat any of them as a fatal protocol error
// and drop the connection.
var (
	ErrFrameTooLarge = errors.New("serve: frame exceeds 1 MiB limit")
	ErrFrameShort    = errors.New("serve: truncated frame")
	ErrBadMessage    = errors.New("serve: malformed message payload")
)

const (
	reqHeaderLen  = 1 + 8 + 4 // type, id, count
	respPayloadLen = 1 + 8 + 1 + 2 + 4
)

// appendFrame appends a length prefix plus payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// DecodeFrame splits the first frame off buf, returning its payload and
// the remaining bytes. The payload aliases buf — no copying, no
// allocation, and the declared length is validated against both maxFrame
// and the bytes actually present before anything is sliced.
func DecodeFrame(buf []byte) (payload, rest []byte, err error) {
	if len(buf) < 4 {
		return nil, buf, ErrFrameShort
	}
	n := binary.LittleEndian.Uint32(buf)
	if n > maxFrame {
		return nil, buf, ErrFrameTooLarge
	}
	if uint32(len(buf)-4) < n {
		return nil, buf, ErrFrameShort
	}
	return buf[4 : 4+n], buf[4+n:], nil
}

// AppendRequest appends one framed classify request to dst.
func AppendRequest(dst []byte, id uint64, xs []float64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(reqHeaderLen+8*len(xs)))
	dst = append(dst, msgClassify)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(xs)))
	for _, v := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeRequest parses a classify-request payload, appending the trace
// into xs (reused when its capacity suffices). The declared sample count
// is checked against the payload length before any allocation, so a
// forged count cannot over-allocate.
func DecodeRequest(payload []byte, xs []float64) (id uint64, out []float64, err error) {
	if len(payload) < reqHeaderLen || payload[0] != msgClassify {
		return 0, xs[:0], ErrBadMessage
	}
	id = binary.LittleEndian.Uint64(payload[1:])
	n := int(binary.LittleEndian.Uint32(payload[9:]))
	if len(payload) != reqHeaderLen+8*n {
		return 0, xs[:0], ErrBadMessage
	}
	xs = xs[:0]
	if cap(xs) < n {
		xs = make([]float64, 0, n)
	}
	for i := 0; i < n; i++ {
		bits := binary.LittleEndian.Uint64(payload[reqHeaderLen+8*i:])
		xs = append(xs, math.Float64frombits(bits))
	}
	return id, xs, nil
}

// AppendResponse appends one framed classify response to dst.
func AppendResponse(dst []byte, id uint64, status byte, label uint16, prob float32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, respPayloadLen)
	dst = append(dst, msgResult)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, status)
	dst = binary.LittleEndian.AppendUint16(dst, label)
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(prob))
	return dst
}

// DecodeResponse parses a classify-response payload.
func DecodeResponse(payload []byte) (id uint64, status byte, label uint16, prob float32, err error) {
	if len(payload) != respPayloadLen || payload[0] != msgResult {
		return 0, 0, 0, 0, ErrBadMessage
	}
	id = binary.LittleEndian.Uint64(payload[1:])
	status = payload[9]
	label = binary.LittleEndian.Uint16(payload[10:])
	prob = math.Float32frombits(binary.LittleEndian.Uint32(payload[12:]))
	return id, status, label, prob, nil
}

// statusError maps a Classify error onto its wire status.
func statusError(err error) byte {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, ErrOverloaded):
		return statusOverloaded
	case errors.Is(err, ErrDeadlineExceeded):
		return statusDeadline
	case errors.Is(err, ErrServerClosed):
		return statusClosed
	default:
		return statusBadRequest
	}
}

// errStatus is statusError's inverse, used by clients.
func errStatus(status byte) error {
	switch status {
	case statusOK:
		return nil
	case statusOverloaded:
		return ErrOverloaded
	case statusDeadline:
		return ErrDeadlineExceeded
	case statusClosed:
		return ErrServerClosed
	default:
		return ErrBadMessage
	}
}
