package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ml"
	"repro/internal/obs"
)

// ClassifyFunc is one way of scoring a trace — the in-process server
// (Server.Classify), a TCP client (Client.Classify), or the naive direct
// model path (NaiveClassifier). The load generator drives all three
// through the same closed loop so their numbers are comparable.
type ClassifyFunc func(xs []float64) (Result, error)

// LoadOpts configures one closed-loop load run.
type LoadOpts struct {
	// Classify scores one trace.
	Classify ClassifyFunc
	// Traces are cycled round-robin by each worker.
	Traces [][]float64
	// Conc is the number of closed-loop client goroutines: each submits
	// its next request the moment the previous one answers.
	Conc int
	// Requests, when positive, stops after exactly this many attempts
	// (spread across workers). Otherwise Duration governs.
	Requests int
	// Duration bounds the run when Requests is zero (default 1s).
	Duration time.Duration
}

// LoadResult is one load run's outcome. Latency quantiles come from a
// run-local histogram with the same 1-2-5 µs bounds the server uses,
// summarized through obs's interpolated quantile estimator.
type LoadResult struct {
	Requests   int           // completed OK
	Overloads  int           // shed with ErrOverloaded
	Deadline   int           // shed with ErrDeadlineExceeded
	Errors     int           // any other failure
	Elapsed    time.Duration // wall time of the measured window
	Throughput float64       // OK responses per second
	P50us      float64       // client-observed latency quantiles (µs)
	P95us      float64
	P99us      float64
	MeanUs     float64
}

// String renders the result as one table-ready line.
func (r LoadResult) String() string {
	return fmt.Sprintf("%d ok (%.0f req/s) p50=%.0fµs p99=%.0fµs shed=%d deadline=%d err=%d in %v",
		r.Requests, r.Throughput, r.P50us, r.P99us, r.Overloads, r.Deadline, r.Errors,
		r.Elapsed.Round(time.Millisecond))
}

// RunLoad drives a closed loop of opts.Conc workers against opts.Classify
// and reports throughput and client-observed latency quantiles. Closed
// loop means offered load adapts to capacity — the steady state measures
// sustainable throughput rather than queue growth.
func RunLoad(opts LoadOpts) (LoadResult, error) {
	if opts.Classify == nil {
		return LoadResult{}, errors.New("serve: RunLoad: Classify is required")
	}
	if len(opts.Traces) == 0 {
		return LoadResult{}, errors.New("serve: RunLoad: no traces")
	}
	if opts.Conc <= 0 {
		opts.Conc = 1
	}
	if opts.Requests <= 0 && opts.Duration <= 0 {
		opts.Duration = time.Second
	}

	// A run-local registry keeps load-side latency out of the server's own
	// metrics; Observe is atomic, so one shared histogram absorbs all
	// workers without locks.
	reg := obs.NewRegistry()
	lat := reg.Histogram("loadgen.latency_us", usBounds...)

	var ok, over, dead, fail atomic.Int64
	var budget atomic.Int64
	budget.Store(int64(opts.Requests))
	stop := make(chan struct{})
	if opts.Requests <= 0 {
		time.AfterFunc(opts.Duration, func() { close(stop) })
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(opts.Conc)
	for w := 0; w < opts.Conc; w++ {
		go func(w int) {
			defer wg.Done()
			i := w // stagger trace selection across workers
			for {
				if opts.Requests > 0 {
					if budget.Add(-1) < 0 {
						return
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				t0 := time.Now()
				_, err := opts.Classify(opts.Traces[i%len(opts.Traces)])
				lat.Observe(float64(time.Since(t0).Nanoseconds()) / 1e3)
				i++
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrOverloaded):
					over.Add(1)
				case errors.Is(err, ErrDeadlineExceeded):
					dead.Add(1)
				default:
					fail.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	hs := reg.Snapshot().Histograms["loadgen.latency_us"]
	res := LoadResult{
		Requests:  int(ok.Load()),
		Overloads: int(over.Load()),
		Deadline:  int(dead.Load()),
		Errors:    int(fail.Load()),
		Elapsed:   elapsed,
		P50us:     hs.P50,
		P95us:     hs.P95,
		P99us:     hs.P99,
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Requests) / elapsed.Seconds()
	}
	if hs.Count > 0 {
		res.MeanUs = hs.Sum / float64(hs.Count)
	}
	return res, nil
}

// NaiveClassifier is the status-quo serving path this package exists to
// beat: every caller preprocesses its own trace and scores it through a
// one-sample PredictBatch on the shared model — the same per-request work
// ml's batch scoring does (prep, pad/trim to inputLen when positive,
// tensor build, score). Each call pays the full per-request toll —
// preprocessing and tensor allocations, a scratch-arena checkout through
// the model's free-list mutex, and a one-wide head GEMM — that the
// micro-batching server amortizes or eliminates. It is safe for
// concurrent use, exactly as naively-shared models are.
func NaiveClassifier(model ml.Frozen, prep ml.Preprocessor, inLen int) ClassifyFunc {
	type batcher interface {
		PredictBatchInto(X []*ml.Tensor, par int, out [][]float64)
	}
	m := model.(batcher)
	return func(xs []float64) (Result, error) {
		v := prep.Apply(xs)
		if inLen > 0 && len(v) != inLen {
			d := make([]float64, inLen)
			copy(d, v)
			v = d
		}
		x := ml.FromSeries(v)
		out := make([][]float64, 1)
		m.PredictBatchInto([]*ml.Tensor{x}, 1, out)
		return argmax(out[0]), nil
	}
}
