package serve

import (
	"errors"
	"math"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	xs := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.NaN()}
	frame := AppendRequest(nil, 42, xs)
	payload, rest, err := DecodeFrame(frame)
	if err != nil || len(rest) != 0 {
		t.Fatalf("DecodeFrame: err=%v rest=%d", err, len(rest))
	}
	id, got, err := DecodeRequest(payload, nil)
	if err != nil || id != 42 {
		t.Fatalf("DecodeRequest: id=%d err=%v", id, err)
	}
	if len(got) != len(xs) {
		t.Fatalf("len %d != %d", len(got), len(xs))
	}
	for i := range xs {
		if math.Float64bits(got[i]) != math.Float64bits(xs[i]) {
			t.Fatalf("sample %d: %v != %v", i, got[i], xs[i])
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	frame := AppendResponse(nil, 7, statusDeadline, 3, 0.625)
	payload, rest, err := DecodeFrame(frame)
	if err != nil || len(rest) != 0 {
		t.Fatalf("DecodeFrame: err=%v rest=%d", err, len(rest))
	}
	id, status, label, prob, err := DecodeResponse(payload)
	if err != nil || id != 7 || status != statusDeadline || label != 3 || prob != 0.625 {
		t.Fatalf("got id=%d status=%d label=%d prob=%v err=%v", id, status, label, prob, err)
	}
	if !errors.Is(errStatus(status), ErrDeadlineExceeded) {
		t.Fatalf("errStatus(%d) = %v", status, errStatus(status))
	}
}

func TestStatusMappingInverts(t *testing.T) {
	for _, err := range []error{nil, ErrOverloaded, ErrDeadlineExceeded, ErrServerClosed} {
		if got := errStatus(statusError(err)); !errors.Is(got, err) && !(err == nil && got == nil) {
			t.Fatalf("status round-trip of %v gave %v", err, got)
		}
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	if _, _, err := DecodeFrame([]byte{1, 2}); !errors.Is(err, ErrFrameShort) {
		t.Fatalf("short prefix: %v", err)
	}
	// Oversized declared length must be rejected before any slicing.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length: %v", err)
	}
	// Declared length beyond available bytes.
	trunc := AppendRequest(nil, 1, []float64{1, 2, 3})[:10]
	if _, _, err := DecodeFrame(trunc); !errors.Is(err, ErrFrameShort) {
		t.Fatalf("truncated frame: %v", err)
	}
}

// FuzzFrameDecode hammers the full decode surface: DecodeFrame must bound
// itself by the bytes present, and the message decoders must reject any
// inconsistent payload with an error — never panic, and never allocate
// storage from an attacker-declared count that the payload cannot back.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendRequest(nil, 1, []float64{1, 2, 3}))
	f.Add(AppendResponse(nil, 2, statusOK, 1, 0.5))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(AppendRequest(nil, 9, nil))
	f.Add(AppendRequest(nil, 3, []float64{1, 2, 3})[:11])

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := data
		for hops := 0; hops < 64; hops++ {
			payload, rest, err := DecodeFrame(buf)
			if err != nil {
				if len(payload) != 0 {
					t.Fatalf("error %v but non-empty payload", err)
				}
				return
			}
			if len(payload) > maxFrame {
				t.Fatalf("payload %d exceeds maxFrame", len(payload))
			}
			if id, xs, err := DecodeRequest(payload, nil); err == nil {
				// A successful decode must be backed byte-for-byte.
				if len(payload) != reqHeaderLen+8*len(xs) {
					t.Fatalf("request decode length mismatch: %d vs %d samples", len(payload), len(xs))
				}
				_ = id
			} else if cap(xs) > len(payload) {
				t.Fatalf("failed decode allocated %d floats for a %d-byte payload", cap(xs), len(payload))
			}
			if _, status, _, _, err := DecodeResponse(payload); err == nil {
				_ = errStatus(status) // must be total
			}
			if len(rest) >= len(buf) {
				t.Fatal("DecodeFrame made no progress")
			}
			buf = rest
		}
	})
}
