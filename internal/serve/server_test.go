package serve

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/ml"
	"repro/internal/sim"
)

// testModel compiles a small PaperNet (random weights exercise the same
// kernels as trained ones) plus a bank of raw traces longer than the prep
// target so the full downsample+smooth+zscore path runs per request.
func testModel(t testing.TB) (ml.Frozen, ml.Preprocessor, [][]float64) {
	t.Helper()
	model, err := ml.PaperNet(23, 300, 5, 8, 8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := ml.Compile(model)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewStream(7, "serve-test")
	traces := make([][]float64, 37)
	for i := range traces {
		xs := make([]float64, 900)
		for j := range xs {
			xs[j] = rng.Uniform(0, 50)
		}
		traces[i] = xs
	}
	return cm, ml.DefaultPreprocessor, traces
}

// TestServeMatchesDirect pins the end-to-end contract: a classification
// through submission, coalescing, and a worker session returns the label
// the direct model path computes, with the probability equal to f32
// accumulation tolerance (coalescing changes micro-batch widths, which
// changes the fused head GEMM's summation order).
func TestServeMatchesDirect(t *testing.T) {
	model, prep, traces := testModel(t)
	direct := NaiveClassifier(model, prep, 0)

	s, err := New(Config{Model: model, Prep: prep, Workers: 2, BatchWait: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(traces); i += 8 {
				want, _ := direct(traces[i])
				got, err := s.Classify(traces[i])
				if err != nil {
					t.Errorf("trace %d: %v", i, err)
					return
				}
				if got.Label != want.Label {
					t.Errorf("trace %d: served label %d, direct %d", i, got.Label, want.Label)
				}
				if d := got.Prob - want.Prob; d > 1e-6 || d < -1e-6 {
					t.Errorf("trace %d: served prob %v, direct %v", i, got.Prob, want.Prob)
				}
			}
		}(c)
	}
	wg.Wait()
}

// blockingSession is a fake scorer that parks until released, so tests
// can saturate the queue deterministically. entered signals each time a
// worker blocks inside it.
type blockingSession struct {
	release chan struct{}
	entered chan struct{}
	classes int
}

func (b *blockingSession) PredictBatchInto(X []*ml.Tensor, par int, out [][]float64) {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	<-b.release
	for i := range X {
		if len(out[i]) != b.classes {
			out[i] = make([]float64, b.classes)
		}
		out[i][0] = 1
	}
}
func (b *blockingSession) Close() {}

func newBlockingSession() *blockingSession {
	return &blockingSession{release: make(chan struct{}),
		entered: make(chan struct{}, 64), classes: 5}
}

// TestQueueFullSheds proves admission control: with the single worker
// parked and the queue full, further submissions return ErrOverloaded
// immediately instead of queueing unboundedly.
func TestQueueFullSheds(t *testing.T) {
	model, prep, traces := testModel(t)
	s, err := newServer(Config{Model: model, Prep: prep, Workers: 1, MaxBatch: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	blk := newBlockingSession()
	s.openSession = func() session { return blk }
	s.start()

	// Park the worker on one request, then fill the queue from background
	// submitters. Classify blocks for admitted requests, so everything
	// past the parked batch goes through goroutines.
	var wg sync.WaitGroup
	results := make(chan error, 64)
	submit := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := s.Classify(traces[i%len(traces)])
				results <- err
			}(i)
		}
	}
	submit(1)
	<-blk.entered // worker is parked mid-score
	submit(s.cfg.QueueDepth)
	// Wait for the queue to actually fill (submitters are concurrent).
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) < s.cfg.QueueDepth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d/%d", len(s.queue), s.cfg.QueueDepth)
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Saturated: a further submission must shed synchronously.
	if _, err := s.Classify(traces[0]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Classify on full queue = %v, want ErrOverloaded", err)
	}

	close(blk.release) // unblock: every queued request must now complete
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("queued request failed: %v", err)
		}
	}
	s.Stop()
}

// TestDeadlineDropsBeforeBatchSlot drives batch assembly white-box: a slot
// whose deadline has passed must be answered with ErrDeadlineExceeded by
// admit and never occupy a position in the batch.
func TestDeadlineDropsBeforeBatchSlot(t *testing.T) {
	model, prep, _ := testModel(t)
	s, err := newServer(Config{Model: model, Prep: prep})
	if err != nil {
		t.Fatal(err)
	}

	expired := &slot{done: make(chan struct{}, 1), enq: time.Now(),
		deadline: time.Now().Add(-time.Millisecond)}
	live := &slot{done: make(chan struct{}, 1), enq: time.Now(),
		deadline: time.Now().Add(time.Minute)}

	batch := s.admit(expired, nil)
	if len(batch) != 0 {
		t.Fatalf("expired request occupied a batch slot (len=%d)", len(batch))
	}
	select {
	case <-expired.done:
	default:
		t.Fatal("expired request was not answered at admission")
	}
	if !errors.Is(expired.err, ErrDeadlineExceeded) {
		t.Fatalf("expired request err = %v, want ErrDeadlineExceeded", expired.err)
	}

	batch = s.admit(live, batch)
	if len(batch) != 1 || batch[0] != live {
		t.Fatalf("live request not admitted: %v", batch)
	}
}

// TestDeadlineShedsEndToEnd covers the same policy through the public
// API: with the worker parked past the deadline, queued requests come
// back ErrDeadlineExceeded, not scored.
func TestDeadlineShedsEndToEnd(t *testing.T) {
	model, prep, traces := testModel(t)
	s, err := newServer(Config{Model: model, Prep: prep, Workers: 1,
		Deadline: time.Millisecond, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	blk := newBlockingSession()
	s.openSession = func() session { return blk }
	s.start()

	// The first request parks the worker inside the fake session (it was
	// admitted before its deadline passed). Only then submit the rest, so
	// they sit queued until their deadlines are long gone.
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	submit := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := s.Classify(traces[0])
				errs <- err
			}()
		}
	}
	submit(1)
	<-blk.entered
	submit(3)
	time.Sleep(20 * time.Millisecond) // the queued deadlines expire
	close(blk.release)
	wg.Wait()
	close(errs)
	shed := 0
	for err := range errs {
		if errors.Is(err, ErrDeadlineExceeded) {
			shed++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if shed != 3 {
		t.Fatalf("%d requests deadline-shed, want all 3 queued behind a 20ms stall", shed)
	}
	s.Stop()
}

// TestConcurrentSubmitShutdown races Classify against Stop (run under
// -race in make ci): every submission must either complete or return
// ErrServerClosed — never panic, deadlock, or send on a closed channel.
func TestConcurrentSubmitShutdown(t *testing.T) {
	model, prep, traces := testModel(t)
	for round := 0; round < 3; round++ {
		s, err := New(Config{Model: model, Prep: prep, Workers: 2,
			BatchWait: 20 * time.Microsecond, QueueDepth: 16})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; ; i++ {
					_, err := s.Classify(traces[(c+i)%len(traces)])
					if errors.Is(err, ErrServerClosed) {
						return
					}
					if err != nil && !errors.Is(err, ErrOverloaded) {
						t.Errorf("submit during shutdown: %v", err)
						return
					}
				}
			}(c)
		}
		time.Sleep(2 * time.Millisecond)
		s.Stop()
		wg.Wait()
		// Post-stop submissions keep failing cleanly.
		if _, err := s.Classify(traces[0]); !errors.Is(err, ErrServerClosed) {
			t.Fatalf("post-stop Classify err = %v, want ErrServerClosed", err)
		}
	}
}

// TestStopDrainsQueue checks graceful shutdown answers everything already
// admitted.
func TestStopDrainsQueue(t *testing.T) {
	model, prep, traces := testModel(t)
	s, err := New(Config{Model: model, Prep: prep, Workers: 1, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	okCount := make(chan int, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Classify(traces[i]); err == nil {
				okCount <- 1
			} else if !errors.Is(err, ErrServerClosed) && !errors.Is(err, ErrOverloaded) {
				t.Errorf("drain: %v", err)
			}
		}(i)
	}
	s.Stop()
	wg.Wait()
	close(okCount)
}

// TestTCPRoundTrip exercises the full wire path — listener, pipelining
// client, status mapping — against the in-process result.
func TestTCPRoundTrip(t *testing.T) {
	model, prep, traces := testModel(t)
	s, err := New(Config{Model: model, Prep: prep, Workers: 1, BatchWait: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(traces); i += 4 {
				want, err := s.Classify(traces[i])
				if err != nil {
					t.Errorf("local: %v", err)
					return
				}
				got, err := cli.Classify(traces[i])
				if err != nil {
					t.Errorf("tcp: %v", err)
					return
				}
				if got.Label != want.Label {
					t.Errorf("trace %d: tcp label %d, local %d", i, got.Label, want.Label)
				}
				// prob crosses the wire as f32.
				if diff := got.Prob - want.Prob; diff > 1e-6 || diff < -1e-6 {
					t.Errorf("trace %d: tcp prob %v, local %v", i, got.Prob, want.Prob)
				}
			}
		}(c)
	}
	wg.Wait()
	cli.Close()
	ln.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestRunLoadCounts sanity-checks the load generator bookkeeping on a
// small request-bounded run.
func TestRunLoadCounts(t *testing.T) {
	model, prep, traces := testModel(t)
	s, err := New(Config{Model: model, Prep: prep})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	res, err := RunLoad(LoadOpts{Classify: s.Classify, Traces: traces, Conc: 4, Requests: 200})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Requests + res.Overloads + res.Deadline + res.Errors
	if total != 200 {
		t.Fatalf("attempted %d requests, want 200 (%+v)", total, res)
	}
	if res.Requests == 0 || res.Throughput <= 0 || !(res.P50us > 0) {
		t.Fatalf("degenerate load result: %+v", res)
	}
	if res.P50us > res.P99us {
		t.Fatalf("quantiles not monotone: %+v", res)
	}
}
