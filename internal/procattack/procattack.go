// Package procattack implements the other §7.1 attack family: instead of a
// timing side channel, the attacker directly reads interrupt *statistics*
// from /proc/interrupts (world-readable on stock Linux) and fingerprints
// websites from count deltas over time.
//
// The paper's contrast: these attacks are trivially mitigated by
// restricting the pseudo-file ("one could simply disable non-privileged
// access to the interrupt pseudo-file"), whereas the timing channel this
// repository reproduces needs no filesystem access at all.
package procattack

import (
	"fmt"

	"repro/internal/interrupt"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Access controls whether the pseudo-file is readable — the mitigation
// switch.
type Access uint8

// Pseudo-file access policies.
const (
	// WorldReadable is stock Linux behaviour.
	WorldReadable Access = iota
	// Restricted models `chmod 0400 /proc/interrupts` (or the sysctl
	// equivalents): reads by unprivileged attackers fail.
	Restricted
)

// ErrRestricted is returned when the pseudo-file has been restricted.
var ErrRestricted = fmt.Errorf("procattack: /proc/interrupts is not readable")

// Reader polls the interrupt counters like an attacker re-reading
// /proc/interrupts in a loop.
type Reader struct {
	m      *kernel.Machine
	access Access
}

// NewReader attaches to a machine with the given access policy.
func NewReader(m *kernel.Machine, access Access) *Reader {
	return &Reader{m: m, access: access}
}

// Totals returns the current per-type counter totals across all cores,
// or ErrRestricted under the mitigation.
func (r *Reader) Totals() ([interrupt.NumTypes]uint64, error) {
	var out [interrupt.NumTypes]uint64
	if r.access == Restricted {
		return out, ErrRestricted
	}
	for t := interrupt.Type(0); t < interrupt.NumTypes; t++ {
		out[t] = r.m.Ctl.TotalCount(t)
	}
	return out, nil
}

// Config parameterizes statistics-trace collection.
type Config struct {
	// Period between counter polls (the attack needs no fine timer —
	// it reads integers from a file).
	Period sim.Duration
	// Samples to record.
	Samples int
	// Types to sum into the trace; empty means every type.
	Types []interrupt.Type
}

func (c *Config) normalize() error {
	if c.Period <= 0 {
		c.Period = 50 * sim.Millisecond
	}
	if c.Samples <= 0 {
		return fmt.Errorf("procattack: config needs Samples > 0")
	}
	return nil
}

// Collect polls the counters every Period and records per-interval deltas.
// The machine's engine is advanced as a side effect; page-load activity
// must already be scheduled.
func Collect(m *kernel.Machine, access Access, cfg Config) (trace.Trace, error) {
	if err := cfg.normalize(); err != nil {
		return trace.Trace{}, err
	}
	r := NewReader(m, access)
	types := cfg.Types
	if len(types) == 0 {
		for t := interrupt.Type(0); t < interrupt.NumTypes; t++ {
			types = append(types, t)
		}
	}
	sum := func(tot [interrupt.NumTypes]uint64) float64 {
		var s uint64
		for _, t := range types {
			s += tot[t]
		}
		return float64(s)
	}
	last, err := r.Totals()
	if err != nil {
		return trace.Trace{}, err
	}
	lastSum := sum(last)
	vals := make([]float64, 0, cfg.Samples)
	for len(vals) < cfg.Samples {
		m.Eng.Run(m.Eng.Now() + cfg.Period)
		tot, err := r.Totals()
		if err != nil {
			return trace.Trace{}, err
		}
		s := sum(tot)
		vals = append(vals, s-lastSum)
		lastSum = s
	}
	return trace.Trace{
		Attack: "proc-interrupts",
		Period: cfg.Period,
		Values: vals,
	}, nil
}
