package procattack

import (
	"errors"
	"testing"

	"repro/internal/browser"
	"repro/internal/interrupt"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/website"
)

func loaded(seed uint64, domain string) *kernel.Machine {
	m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: seed})
	visit := website.ProfileFor(domain).Instantiate(m.RNG().Fork("v"))
	browser.LoadPage(m, visit, 1.0, 10*sim.Second)
	return m
}

func TestCollectShape(t *testing.T) {
	m := loaded(1, "amazon.com")
	tr, err := Collect(m, WorldReadable, Config{Period: 100 * sim.Millisecond, Samples: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Values) != 50 || tr.Attack != "proc-interrupts" {
		t.Fatalf("trace: %d values, %q", len(tr.Values), tr.Attack)
	}
	// Deltas are nonnegative counts.
	for _, v := range tr.Values {
		if v < 0 {
			t.Fatal("negative delta")
		}
	}
	// The load's front-heavy network activity must show: early deltas
	// larger than late ones.
	early := stats.Mean(tr.Values[:20])
	late := stats.Mean(tr.Values[30:])
	if early <= late {
		t.Fatalf("no activity shape: early %v vs late %v", early, late)
	}
}

func TestCollectTypeFilter(t *testing.T) {
	m := loaded(2, "amazon.com")
	tr, err := Collect(m, WorldReadable, Config{
		Period: 100 * sim.Millisecond, Samples: 30,
		Types: []interrupt.Type{interrupt.NetRX},
	})
	if err != nil {
		t.Fatal(err)
	}
	m2 := loaded(2, "amazon.com")
	all, err := Collect(m2, WorldReadable, Config{Period: 100 * sim.Millisecond, Samples: 30})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mean(tr.Values) >= stats.Mean(all.Values) {
		t.Fatal("filtered trace should count fewer interrupts")
	}
}

func TestRestrictedMitigation(t *testing.T) {
	m := loaded(3, "amazon.com")
	_, err := Collect(m, Restricted, Config{Samples: 5})
	if !errors.Is(err, ErrRestricted) {
		t.Fatalf("err = %v, want ErrRestricted", err)
	}
	r := NewReader(m, Restricted)
	if _, err := r.Totals(); !errors.Is(err, ErrRestricted) {
		t.Fatal("Totals should fail when restricted")
	}
}

func TestConfigValidation(t *testing.T) {
	m := loaded(4, "amazon.com")
	if _, err := Collect(m, WorldReadable, Config{}); err == nil {
		t.Fatal("zero samples accepted")
	}
	// Default period fills in.
	tr, err := Collect(m, WorldReadable, Config{Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Period != 50*sim.Millisecond {
		t.Fatal("default period")
	}
}

// The statistics traces fingerprint sites too: traces of the same site
// correlate better than traces of different sites.
func TestStatisticsFingerprint(t *testing.T) {
	collect := func(seed uint64, domain string) []float64 {
		m := loaded(seed, domain)
		tr, err := Collect(m, WorldReadable, Config{Period: 100 * sim.Millisecond, Samples: 100})
		if err != nil {
			t.Fatal(err)
		}
		return stats.ZScore(tr.Values)
	}
	a1 := collect(10, "nytimes.com")
	a2 := collect(11, "nytimes.com")
	b := collect(12, "amazon.com")
	same, err := stats.Pearson(a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := stats.Pearson(a1, b)
	if err != nil {
		t.Fatal(err)
	}
	if same <= diff {
		t.Fatalf("same-site r=%v should beat cross-site r=%v", same, diff)
	}
}
