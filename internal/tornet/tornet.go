// Package tornet models the Tor network path a Tor Browser page load takes:
// a three-hop circuit with per-hop latency and a bottleneck relay
// bandwidth. Circuits are rebuilt between visits, so the same page arrives
// with different delays, stretches, and throughput ceilings each time —
// the mechanistic source of Tor Browser's much lower fingerprinting
// accuracy (Table 1), replacing a hand-tuned jitter multiplier.
package tornet

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/website"
)

// Circuit is one guard–middle–exit path.
type Circuit struct {
	// HopRTT holds round-trip latencies client→guard, guard→middle,
	// middle→exit.
	HopRTT [3]sim.Duration
	// BottleneckPPS caps packet throughput through the slowest relay
	// (packets/second at ~1.5 KB cells-per-packet granularity).
	BottleneckPPS float64
}

// NewCircuit samples a realistic circuit: relay latencies tens to hundreds
// of milliseconds, bandwidths from a long-tailed distribution (most relays
// are slow; a few are fast).
func NewCircuit(rng *sim.Stream) Circuit {
	var c Circuit
	c.HopRTT[0] = rng.DurLogNormal(40*sim.Millisecond, 0.5, 10*sim.Millisecond, 400*sim.Millisecond)
	c.HopRTT[1] = rng.DurLogNormal(70*sim.Millisecond, 0.6, 15*sim.Millisecond, 800*sim.Millisecond)
	c.HopRTT[2] = rng.DurLogNormal(90*sim.Millisecond, 0.6, 15*sim.Millisecond, 1200*sim.Millisecond)
	c.BottleneckPPS = rng.LogNormal(0, 0.8) * 2500 // median 2.5k pps, long tail both ways
	if c.BottleneckPPS < 250 {
		c.BottleneckPPS = 250
	}
	return c
}

// RTT returns the full-circuit round trip.
func (c Circuit) RTT() sim.Duration {
	return c.HopRTT[0] + c.HopRTT[1] + c.HopRTT[2]
}

// String renders the circuit like a Tor control-port summary.
func (c Circuit) String() string {
	return fmt.Sprintf("circuit rtt=%v (guard %v, middle %v, exit %v) bw≈%.0f pps",
		c.RTT(), c.HopRTT[0], c.HopRTT[1], c.HopRTT[2], c.BottleneckPPS)
}

// Distort transforms a website visit profile as observed through the
// circuit:
//
//   - every pulse is delayed by the circuit RTT times the number of
//     round trips its position implies (connection setup, then request
//     cascades), plus per-pulse queueing jitter;
//   - network rates are capped at the bottleneck throughput, stretching
//     the pulse so the same packet volume still arrives;
//   - non-network activity (CPU, memory) stretches with its pulse, since
//     rendering waits for data.
func (c Circuit) Distort(p website.Profile, rng *sim.Stream) website.Profile {
	out := website.Profile{Domain: p.Domain, Pulses: make([]website.Pulse, len(p.Pulses))}
	rtt := float64(c.RTT())
	for i, pl := range p.Pulses {
		// Handshake + per-pulse request round trips: earlier pulses
		// wait for circuit setup (~3 RTTs: TLS + Tor handshake), later
		// ones ride established streams (~1 RTT) plus queueing noise.
		trips := 1.0
		if pl.Start < 500*sim.Millisecond {
			trips = 3.0
		}
		delay := sim.Duration(trips*rtt) + rng.DurLogNormal(sim.Duration(rtt/2)+1, 0.5, 0, 5*sim.Second)
		pl.Start += delay

		// Bandwidth ceiling: stretch the pulse to deliver the same
		// packet count at the capped rate.
		if pl.NetPacketsPerSec > c.BottleneckPPS {
			stretch := pl.NetPacketsPerSec / c.BottleneckPPS
			pl.Duration = sim.Duration(float64(pl.Duration) * stretch)
			pl.NetPacketsPerSec = c.BottleneckPPS
			// Dependent work spreads over the longer window.
			pl.GfxPerSec /= stretch
			pl.CPUBurstsPerSec /= stretch
			pl.MemLinesPerSec /= stretch
			pl.SoftirqsPerSec /= stretch
		}
		out.Pulses[i] = pl
	}
	return out
}
