package tornet

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/website"
)

func TestNewCircuitPlausible(t *testing.T) {
	rng := sim.NewStream(1, "tor")
	for i := 0; i < 200; i++ {
		c := NewCircuit(rng)
		if c.RTT() < 40*sim.Millisecond || c.RTT() > 3*sim.Second {
			t.Fatalf("implausible RTT %v", c.RTT())
		}
		if c.BottleneckPPS < 250 || c.BottleneckPPS > 100000 {
			t.Fatalf("implausible bandwidth %v", c.BottleneckPPS)
		}
	}
	if NewCircuit(rng).String() == "" {
		t.Fatal("String")
	}
}

func TestCircuitsVary(t *testing.T) {
	rng := sim.NewStream(2, "tor")
	a, b := NewCircuit(rng), NewCircuit(rng)
	if a.RTT() == b.RTT() && a.BottleneckPPS == b.BottleneckPPS {
		t.Fatal("circuits should differ")
	}
}

func TestDistortDelaysAndCaps(t *testing.T) {
	rng := sim.NewStream(3, "tor")
	c := Circuit{HopRTT: [3]sim.Duration{50 * sim.Millisecond, 50 * sim.Millisecond, 100 * sim.Millisecond}, BottleneckPPS: 1000}
	p := website.ProfileFor("amazon.com")
	d := c.Distort(p, rng)
	if d.Domain != p.Domain || len(d.Pulses) != len(p.Pulses) {
		t.Fatal("shape")
	}
	for i := range p.Pulses {
		if d.Pulses[i].Start <= p.Pulses[i].Start {
			t.Fatalf("pulse %d not delayed", i)
		}
		if d.Pulses[i].NetPacketsPerSec > 1000+1e-9 {
			t.Fatalf("pulse %d rate %v exceeds bottleneck", i, d.Pulses[i].NetPacketsPerSec)
		}
	}
	// The heavy first pulse must be stretched, preserving packet volume.
	origVol := p.Pulses[0].NetPacketsPerSec * p.Pulses[0].Duration.Seconds()
	newVol := d.Pulses[0].NetPacketsPerSec * d.Pulses[0].Duration.Seconds()
	if rel := newVol / origVol; rel < 0.99 || rel > 1.01 {
		t.Fatalf("packet volume not preserved: %v vs %v", newVol, origVol)
	}
	if d.Pulses[0].Duration <= p.Pulses[0].Duration {
		t.Fatal("heavy pulse not stretched")
	}
}

func TestDistortEarlyPulsesWaitForHandshake(t *testing.T) {
	rng := sim.NewStream(4, "tor")
	c := Circuit{HopRTT: [3]sim.Duration{100 * sim.Millisecond, 100 * sim.Millisecond, 100 * sim.Millisecond}, BottleneckPPS: 1e6}
	p := website.Profile{Domain: "x", Pulses: []website.Pulse{
		{Start: 0, Duration: sim.Second, NetPacketsPerSec: 10},
		{Start: 10 * sim.Second, Duration: sim.Second, NetPacketsPerSec: 10},
	}}
	d := c.Distort(p, rng)
	earlyDelay := d.Pulses[0].Start - p.Pulses[0].Start
	lateDelay := d.Pulses[1].Start - p.Pulses[1].Start
	// Early pulse pays ~3 RTTs (900ms+), the late one ~1 RTT.
	if earlyDelay < 900*sim.Millisecond {
		t.Fatalf("early delay %v too small", earlyDelay)
	}
	if lateDelay >= earlyDelay {
		t.Fatalf("late delay %v should be below early %v", lateDelay, earlyDelay)
	}
}

// Property: distortion never produces negative times, zero durations, or
// negative rates.
func TestDistortValidityProperty(t *testing.T) {
	p := website.ProfileFor("github.com")
	f := func(seed uint64) bool {
		rng := sim.NewStream(seed, "tor")
		c := NewCircuit(rng)
		d := c.Distort(p, rng)
		for _, pl := range d.Pulses {
			if pl.Start < 0 || pl.Duration <= 0 {
				return false
			}
			if pl.NetPacketsPerSec < 0 || pl.SoftirqsPerSec < 0 || pl.MemLinesPerSec < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
