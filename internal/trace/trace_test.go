package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func mkDataset(classes, perClass, n int) *Dataset {
	d := &Dataset{NumClasses: classes}
	for c := 0; c < classes; c++ {
		for k := 0; k < perClass; k++ {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = float64(c*1000 + k*10 + i)
			}
			d.Append(Trace{Domain: "d", Label: c, Attack: "loop-counting", Period: 5 * sim.Millisecond, Values: vals})
		}
	}
	return d
}

func TestValidate(t *testing.T) {
	d := mkDataset(3, 2, 10)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := mkDataset(3, 2, 10)
	bad.Traces[1].Label = 7
	if bad.Validate() == nil {
		t.Fatal("out-of-range label accepted")
	}
	bad2 := mkDataset(3, 2, 10)
	bad2.Traces[2].Values = bad2.Traces[2].Values[:5]
	if bad2.Validate() == nil {
		t.Fatal("ragged lengths accepted")
	}
	if (&Dataset{NumClasses: 1}).Validate() == nil {
		t.Fatal("empty dataset accepted")
	}
	if (&Dataset{}).Validate() == nil {
		t.Fatal("zero classes accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := Trace{Values: []float64{1, 2, 3}}
	c := tr.Clone()
	c.Values[0] = 99
	if tr.Values[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestNormalized(t *testing.T) {
	tr := Trace{Values: []float64{1, 2, 4}}
	n := tr.Normalized()
	if n[2] != 1 || n[0] != 0.25 {
		t.Fatalf("Normalized = %v", n)
	}
}

func TestByClassAndSubset(t *testing.T) {
	d := mkDataset(3, 4, 5)
	by := d.ByClass()
	if len(by) != 3 || len(by[1]) != 4 {
		t.Fatalf("ByClass = %v", by)
	}
	s := d.Subset([]int{0, 5, 11})
	if s.Len() != 3 || s.Traces[1].Label != 1 {
		t.Fatalf("Subset wrong: %+v", s.Traces)
	}
}

func TestKFoldStratified(t *testing.T) {
	d := mkDataset(5, 10, 4)
	folds, err := d.KFold(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		if len(f.Test) != 5 { // 50 traces / 10 folds
			t.Fatalf("test fold size = %d, want 5", len(f.Test))
		}
		if len(f.Train) != 45 {
			t.Fatalf("train fold size = %d, want 45", len(f.Train))
		}
		for _, i := range f.Test {
			seen[i]++
		}
		// No overlap between train and test.
		inTest := map[int]bool{}
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Fatal("train/test overlap")
			}
		}
	}
	for i := 0; i < d.Len(); i++ {
		if seen[i] != 1 {
			t.Fatalf("trace %d appears in %d test folds", i, seen[i])
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	d := mkDataset(2, 2, 3)
	if _, err := d.KFold(1, 0); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := d.KFold(10, 0); err == nil {
		t.Fatal("k > len accepted")
	}
}

// Property: k-fold partitions exactly, for any valid shape.
func TestKFoldPartitionProperty(t *testing.T) {
	f := func(cs, ps uint8) bool {
		classes := int(cs)%5 + 2
		per := int(ps)%6 + 2
		d := mkDataset(classes, per, 3)
		k := 2 + int(cs)%3
		folds, err := d.KFold(k, 11)
		if err != nil {
			return false
		}
		total := 0
		for _, f := range folds {
			total += len(f.Test)
			if len(f.Test)+len(f.Train) != d.Len() {
				return false
			}
		}
		return total == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDownsample(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := Downsample(xs, 2)
	want := []float64{1.5, 3.5, 5}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Downsample = %v, want %v", got, want)
		}
	}
	id := Downsample(xs, 1)
	for i := range xs {
		if id[i] != xs[i] {
			t.Fatal("factor=1 should copy")
		}
	}
	id[0] = 99
	if xs[0] == 99 {
		t.Fatal("Downsample must not alias input")
	}
}

func TestGobRoundTrip(t *testing.T) {
	d := mkDataset(3, 2, 8)
	var buf bytes.Buffer
	if err := d.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClasses != 3 || got.Len() != 6 || got.Traces[5].Values[7] != d.Traces[5].Values[7] {
		t.Fatal("gob round-trip mismatch")
	}
	if _, err := ReadGob(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage gob accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := mkDataset(2, 2, 4)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 || got.Traces[0].Attack != "loop-counting" {
		t.Fatal("json round-trip mismatch")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("garbage json accepted")
	}
}

func TestMeanTrace(t *testing.T) {
	ts := []Trace{
		{Values: []float64{1, 2}},
		{Values: []float64{3, 4}},
	}
	m, err := MeanTrace(ts)
	if err != nil || m[0] != 2 || m[1] != 3 {
		t.Fatalf("MeanTrace = %v, %v", m, err)
	}
	if _, err := MeanTrace(nil); err == nil {
		t.Fatal("empty MeanTrace accepted")
	}
	ts[1].Values = []float64{1}
	if _, err := MeanTrace(ts); err == nil {
		t.Fatal("ragged MeanTrace accepted")
	}
}

// referenceDownsample is the pre-optimization append-per-window loop;
// DownsampleInto's full/partial-window split must reproduce it
// bit-for-bit.
func referenceDownsample(xs []float64, factor int) []float64 {
	if factor <= 1 {
		return append([]float64(nil), xs...)
	}
	var out []float64
	for i := 0; i < len(xs); i += factor {
		j := i + factor
		if j > len(xs) {
			j = len(xs)
		}
		var s float64
		for _, v := range xs[i:j] {
			s += v
		}
		out = append(out, s/float64(j-i))
	}
	return out
}

func TestDownsampleMatchesReference(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 299, 300, 900} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64((i*2654435761)%1000) / 7
		}
		for _, f := range []int{1, 2, 3, 4, 7, n + 1} {
			want := referenceDownsample(xs, f)
			got := Downsample(xs, f)
			if len(got) != len(want) {
				t.Fatalf("n=%d f=%d: len %d, want %d", n, f, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d f=%d: [%d] = %v, want %v", n, f, i, got[i], want[i])
				}
			}
		}
	}
}
