package trace

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func storesEqual(t *testing.T, a, b *Store) {
	t.Helper()
	if a.Len() != b.Len() || a.TraceLen() != b.TraceLen() ||
		a.NumClasses() != b.NumClasses() || a.TrimmedSamples() != b.TrimmedSamples() {
		t.Fatalf("store shape mismatch: %dx%d/%d/%d vs %dx%d/%d/%d",
			a.Len(), a.TraceLen(), a.NumClasses(), a.TrimmedSamples(),
			b.Len(), b.TraceLen(), b.NumClasses(), b.TrimmedSamples())
	}
	for i := 0; i < a.Len(); i++ {
		ta, tb := a.Trace(i), b.Trace(i)
		if ta.Domain != tb.Domain || ta.Label != tb.Label ||
			ta.Attack != tb.Attack || ta.Period != tb.Period {
			t.Fatalf("trace %d metadata mismatch: %+v vs %+v", i, ta, tb)
		}
		av, bv := a.Values(i), b.Values(i)
		if len(av) != len(bv) {
			t.Fatalf("trace %d length %d vs %d", i, len(av), len(bv))
		}
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("trace %d sample %d: %v vs %v", i, j, av[j], bv[j])
			}
		}
	}
}

func TestShardFileRoundTrip(t *testing.T) {
	want := buildStore(t, []int{33, 32, 33, 33, 31, 33}, 33)
	path := filepath.Join(t.TempDir(), "store.trst")
	if err := want.WriteShardFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenShardFile(path)
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, got)
	if runtime.GOOS == "linux" && !got.Spilled() {
		t.Fatal("OpenShardFile did not mmap the value block on linux")
	}
	// The value block must start page-aligned so the kernel can map it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < shardValOff {
		t.Fatalf("file too small: %d bytes", len(raw))
	}
	if binary.LittleEndian.Uint32(raw) != shardMagic {
		t.Fatal("bad magic")
	}
	v0 := binary.LittleEndian.Uint64(raw[shardValOff:])
	if got := want.Values(0)[0]; got != math.Float64frombits(v0) {
		t.Fatalf("value block not at offset %d", shardValOff)
	}
}

func TestSpillReloadBitIdentity(t *testing.T) {
	want := buildStore(t, []int{64, 64, 64, 64}, 64)
	// Keep an owned copy of the heap contents to compare after the swap.
	ref, err := NewStoreFromDataset(want.Dataset())
	if err != nil {
		t.Fatal(err)
	}
	before := want.ResidentBytes()
	path := filepath.Join(t.TempDir(), "spill.trst")
	if err := want.Spill(path); err != nil {
		t.Fatal(err)
	}
	storesEqual(t, ref, want)
	if runtime.GOOS == "linux" {
		if !want.Spilled() {
			t.Fatal("Spill did not leave the store mmap-backed on linux")
		}
		if after := want.ResidentBytes(); after >= before {
			t.Fatalf("resident bytes did not drop: %d -> %d", before, after)
		}
	}
	// Spilling again to the same path must be a no-op that keeps identity.
	if err := want.Spill(path); err != nil {
		t.Fatal(err)
	}
	storesEqual(t, ref, want)
	// And an independent open of the spill file sees the same contents.
	got, err := OpenShardFile(path)
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, ref, got)
}

// TestReadStoreAnyGobBackCompat is the serialization back-compat gate: a
// seed-era gob dataset (written by Dataset.WriteGob, no shard framing) must
// load into a columnar Store through the same entry point as shard files.
func TestReadStoreAnyGobBackCompat(t *testing.T) {
	ds := &Dataset{NumClasses: 3, TrimmedSamples: 3}
	for i := 0; i < 5; i++ {
		ds.Append(storeTrace(i, 21))
	}
	var buf bytes.Buffer
	if err := ds.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadStoreAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewStoreFromDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, st)
}

func TestReadStoreAnyShard(t *testing.T) {
	want := buildStore(t, []int{17, 17, 17}, 17)
	var buf bytes.Buffer
	if err := want.WriteShardTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStoreAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, want, got)
}

func TestShardHeaderRejects(t *testing.T) {
	want := buildStore(t, []int{9, 9}, 9)
	var buf bytes.Buffer
	if err := want.WriteShardTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = f(b)
		if _, err := decodeShard(b, false); err == nil {
			t.Fatalf("%s: decodeShard accepted corrupt image", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("bad version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[4:], 99)
		return b
	})
	mutate("truncated header", func(b []byte) []byte { return b[:shardHdrLen-1] })
	mutate("truncated values", func(b []byte) []byte { return b[:shardValOff+7] })
	mutate("huge count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:], 1<<60)
		return b
	})
	mutate("huge stride", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:], 1<<60)
		return b
	})
	mutate("traceLen beyond stride", func(b []byte) []byte {
		stride := binary.LittleEndian.Uint64(b[16:])
		binary.LittleEndian.PutUint64(b[24:], stride+1)
		return b
	})
	mutate("metaLen beyond file", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[48:], uint64(len(b)))
		return b
	})
}

// FuzzShardDecode hammers the shard decoder with mutated images: it must
// reject garbage with an error, never panic or over-allocate (every count
// and length is validated against the remaining bytes before allocation).
func FuzzShardDecode(f *testing.F) {
	mk := func(lens []int, stride int) []byte {
		b := NewBuilder(len(lens), stride)
		for i, l := range lens {
			tr := storeTrace(i, l)
			row := b.Row(i)
			row = append(row, tr.Values...)
			tr.Values = row
			b.Finish(i, tr)
		}
		s, err := b.Seal(3)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteShardTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(mk([]int{5, 4, 5}, 5))
	f.Add(mk([]int{1}, 1))
	f.Add([]byte{})
	f.Add(make([]byte, shardHdrLen))
	f.Add(make([]byte, shardValOff))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeShard(data, false)
		if err != nil {
			return
		}
		// Accepted images must be internally consistent.
		for i := 0; i < s.Len(); i++ {
			_ = s.Values(i)
			_ = s.Trace(i)
		}
	})
}
