package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// storeTrace builds a deterministic synthetic trace for store tests.
func storeTrace(i, n int) Trace {
	v := make([]float64, n)
	for j := range v {
		v[j] = float64((i+1)*997+j*31) * 0.125
	}
	return Trace{
		Domain: []string{"a.com", "b.org", "c.net"}[i%3],
		Label:  i % 3,
		Attack: "loop-counting",
		Period: 5 * sim.Millisecond,
		Values: v,
	}
}

// buildStore assembles n traces of the given lengths through a Builder.
func buildStore(t *testing.T, lens []int, stride int) *Store {
	t.Helper()
	b := NewBuilder(len(lens), stride)
	for i, l := range lens {
		tr := storeTrace(i, l)
		row := b.Row(i)
		row = append(row, tr.Values...)
		tr.Values = row
		b.Finish(i, tr)
	}
	st, err := b.Seal(3)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBuilderSealTrimsToMin(t *testing.T) {
	st := buildStore(t, []int{50, 48, 50, 49}, 50)
	if st.Len() != 4 || st.TraceLen() != 48 {
		t.Fatalf("store %dx%d, want 4x48", st.Len(), st.TraceLen())
	}
	if st.TrimmedSamples() != 2+0+2+1 {
		t.Fatalf("trimmed %d, want 5", st.TrimmedSamples())
	}
	for i := 0; i < 4; i++ {
		want := storeTrace(i, 50)
		got := st.Values(i)
		if len(got) != 48 {
			t.Fatalf("trace %d length %d", i, len(got))
		}
		for j, v := range got {
			if v != want.Values[j] {
				t.Fatalf("trace %d sample %d: %v != %v", i, j, v, want.Values[j])
			}
		}
		if st.Label(i) != want.Label || st.Domain(i) != want.Domain {
			t.Fatalf("trace %d metadata mismatch", i)
		}
	}
	// Views must be capacity-capped: appending to one cannot scribble on
	// the next row.
	v := st.Values(0)
	if cap(v) != len(v) {
		t.Fatalf("Values cap %d exceeds len %d", cap(v), len(v))
	}
}

func TestBuilderRejectsEmptyTrace(t *testing.T) {
	b := NewBuilder(2, 8)
	b.Finish(0, storeTrace(0, 8))
	b.Finish(1, Trace{Domain: "x", Values: nil})
	if _, err := b.Seal(1); err == nil {
		t.Fatal("Seal accepted a zero-length trace")
	}
}

func TestStoreDatasetAliasesArena(t *testing.T) {
	st := buildStore(t, []int{30, 30}, 30)
	ds := st.Dataset()
	if ds.Len() != 2 || ds.NumClasses != 3 {
		t.Fatalf("dataset %d traces, %d classes", ds.Len(), ds.NumClasses)
	}
	if ds.Store() != st {
		t.Fatal("dataset lost its store backref")
	}
	if &ds.Traces[1].Values[0] != &st.Values(1)[0] {
		t.Fatal("dataset traces do not alias the arena")
	}
	if !ds.Traces[0].IsView() {
		t.Fatal("arena-backed trace not marked as view")
	}
	// Clone must detach from the arena.
	c := ds.Traces[0].Clone()
	if c.IsView() || &c.Values[0] == &st.Values(0)[0] {
		t.Fatal("Clone still aliases the arena")
	}
	// Owned on a view copies; on an owned trace it is a no-op.
	o := ds.Traces[0].Owned()
	if o.IsView() || &o.Values[0] == &st.Values(0)[0] {
		t.Fatal("Owned still aliases the arena")
	}
	o2 := o.Owned()
	if &o2.Values[0] != &o.Values[0] {
		t.Fatal("Owned copied an already-owned trace")
	}
}

func TestNewStoreFromDatasetRoundTrip(t *testing.T) {
	ds := &Dataset{NumClasses: 3}
	for i := 0; i < 6; i++ {
		ds.Append(storeTrace(i, 25))
	}
	st, err := NewStoreFromDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	back := st.Dataset()
	for i := range ds.Traces {
		a, b := ds.Traces[i], back.Traces[i]
		if a.Domain != b.Domain || a.Label != b.Label || a.Attack != b.Attack || a.Period != b.Period {
			t.Fatalf("trace %d metadata mismatch", i)
		}
		for j := range a.Values {
			if a.Values[j] != b.Values[j] {
				t.Fatalf("trace %d sample %d mismatch", i, j)
			}
		}
	}
}

func TestStoreShardAndView(t *testing.T) {
	st := buildStore(t, []int{20, 20, 20, 20, 20}, 20)
	shards := st.Shards(2)
	if len(shards) != 3 || shards[0].Len() != 2 || shards[2].Len() != 1 {
		t.Fatalf("Shards(2) produced %d shards", len(shards))
	}
	if &shards[1].Values(0)[0] != &st.Values(2)[0] {
		t.Fatal("shard does not alias the arena")
	}
	v := st.View([]int{4, 1})
	if v.Len() != 2 || v.Label(0) != st.Label(4) {
		t.Fatal("view indexing broken")
	}
	vds := v.Dataset()
	if &vds.Traces[1].Values[0] != &st.Values(1)[0] {
		t.Fatal("view dataset does not alias the arena")
	}
}

func TestStoreF32Mirror(t *testing.T) {
	st := buildStore(t, []int{12, 11}, 12)
	m := st.F32()
	if len(m) != 2*st.TraceLen() {
		t.Fatalf("mirror length %d, want %d", len(m), 2*st.TraceLen())
	}
	for i := 0; i < st.Len(); i++ {
		row := st.F32Row(i)
		for j, v := range st.Values(i) {
			if row[j] != float32(v) {
				t.Fatalf("mirror [%d][%d] = %v, want %v", i, j, row[j], float32(v))
			}
		}
	}
	if &st.F32()[0] != &m[0] {
		t.Fatal("mirror rebuilt on second call")
	}
}

func TestSpillBuilderMatchesBuilder(t *testing.T) {
	const n, stride = 10, 40
	lens := make([]int, n)
	for i := range lens {
		lens[i] = stride - i%3
	}
	want := buildStore(t, lens, stride)

	path := filepath.Join(t.TempDir(), "spill.trst")
	sb, err := NewSpillBuilder(path, n, stride, 4)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; lo += 4 {
		hi := lo + 4
		if hi > n {
			hi = n
		}
		if err := sb.Advance(lo, hi); err != nil {
			t.Fatal(err)
		}
		for i := lo; i < hi; i++ {
			tr := storeTrace(i, lens[i])
			row := sb.Row(i)
			row = append(row, tr.Values...)
			tr.Values = row
			sb.Finish(i, tr)
		}
	}
	got, err := sb.Seal(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() || got.TraceLen() != want.TraceLen() ||
		got.TrimmedSamples() != want.TrimmedSamples() {
		t.Fatalf("spilled store %dx%d trim %d, want %dx%d trim %d",
			got.Len(), got.TraceLen(), got.TrimmedSamples(),
			want.Len(), want.TraceLen(), want.TrimmedSamples())
	}
	for i := 0; i < n; i++ {
		gv, wv := got.Values(i), want.Values(i)
		for j := range wv {
			if gv[j] != wv[j] {
				t.Fatalf("trace %d sample %d: spilled %v != in-memory %v", i, j, gv[j], wv[j])
			}
		}
		if got.Domain(i) != want.Domain(i) || got.Label(i) != want.Label(i) {
			t.Fatalf("trace %d metadata mismatch", i)
		}
	}
	// The two paths must also produce byte-identical shard files.
	var a, b bytes.Buffer
	if err := want.WriteShardTo(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteShardTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("SpillBuilder shard bytes differ from Builder store")
	}
}
