package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := mkDataset(3, 2, 5)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NumClasses != d.NumClasses {
		t.Fatalf("round trip: %d/%d traces, %d/%d classes",
			got.Len(), d.Len(), got.NumClasses, d.NumClasses)
	}
	for i := range d.Traces {
		if got.Traces[i].Domain != d.Traces[i].Domain ||
			got.Traces[i].Label != d.Traces[i].Label ||
			got.Traces[i].Attack != d.Traces[i].Attack {
			t.Fatalf("trace %d metadata mismatch", i)
		}
		for j := range d.Traces[i].Values {
			if got.Traces[i].Values[j] != d.Traces[i].Values[j] {
				t.Fatalf("trace %d value %d mismatch", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"x,y\n1,2\n",
		"trace_id,domain,label,attack,sample,value\nnope,d,0,a,0,1\n",
		"trace_id,domain,label,attack,sample,value\n0,d,zz,a,0,1\n",
		"trace_id,domain,label,attack,sample,value\n0,d,0,a,0,zz\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestFilterLabels(t *testing.T) {
	d := mkDataset(4, 3, 5)
	f := d.FilterLabels([]int{2, 0})
	if f.NumClasses != 2 || f.Len() != 6 {
		t.Fatalf("filtered: %d classes, %d traces", f.NumClasses, f.Len())
	}
	for _, tr := range f.Traces {
		if tr.Label != 0 && tr.Label != 1 {
			t.Fatalf("label %d not remapped", tr.Label)
		}
	}
	// Old label 2 → new 0; old 0 → new 1.
	if f.Traces[0].Label != 1 { // first traces in d are label 0
		t.Fatalf("remap order: %d", f.Traces[0].Label)
	}
	// Filtering must not alias original values.
	f.Traces[0].Values[0] = -999
	if d.Traces[0].Values[0] == -999 {
		t.Fatal("FilterLabels aliases source")
	}
}

func TestMerge(t *testing.T) {
	a := mkDataset(2, 2, 4)
	b := mkDataset(3, 1, 4)
	a.Merge(b)
	if a.Len() != 7 || a.NumClasses != 3 {
		t.Fatalf("merged: %d traces, %d classes", a.Len(), a.NumClasses)
	}
}
