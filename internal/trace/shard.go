package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"repro/internal/sim"
)

// Shard file format (version 1) — the on-disk twin of a sealed Store,
// designed so the value block can be mmapped straight into the arena:
//
//	[0,64)            fixed little-endian header (shardHeader)
//	[64,4096)         zero padding
//	[4096, 4096+n*stride*8)   value block: n rows of stride float64, LE
//	[metaOff, metaOff+metaLen) per-trace metadata (domain, attack, label, period)
//
// The value block starts at a page boundary (shardValOff) so an mmap of the
// whole file yields an 8-aligned float64 view with zero copies; platforms
// without mmap read the same bytes through ReadAt. All integers are
// little-endian; the value block is raw IEEE-754 bits, so round-trips are
// bit-identical. Every count and length in the header and metadata section
// is validated against the remaining input before any allocation (the same
// discipline as the serve and telemetry frame decoders).
const (
	shardMagic   = 0x46535254 // "TRSF" little-endian
	shardVersion = 1
	shardHdrLen  = 64
	shardValOff  = 4096 // page-aligned start of the value block
	// shardMaxMeta bounds the metadata section; generous (domains are short
	// strings) while keeping a hostile header from driving a huge read.
	shardMaxMeta = 1 << 30
)

type shardHeader struct {
	version  uint32
	n        int
	stride   int
	traceLen int
	classes  int
	trimmed  int
	metaLen  int
}

func putShardHeader(dst []byte, h shardHeader) {
	binary.LittleEndian.PutUint32(dst[0:], shardMagic)
	binary.LittleEndian.PutUint32(dst[4:], h.version)
	binary.LittleEndian.PutUint64(dst[8:], uint64(h.n))
	binary.LittleEndian.PutUint64(dst[16:], uint64(h.stride))
	binary.LittleEndian.PutUint64(dst[24:], uint64(h.traceLen))
	binary.LittleEndian.PutUint64(dst[32:], uint64(h.classes))
	binary.LittleEndian.PutUint64(dst[40:], uint64(h.trimmed))
	binary.LittleEndian.PutUint64(dst[48:], uint64(h.metaLen))
}

// parseShardHeader decodes and validates the fixed header against the total
// input size, so every derived offset below is known in range.
func parseShardHeader(data []byte, total int64) (shardHeader, error) {
	var h shardHeader
	if len(data) < shardHdrLen {
		return h, fmt.Errorf("trace: shard header truncated (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != shardMagic {
		return h, fmt.Errorf("trace: bad shard magic %#x", m)
	}
	h.version = binary.LittleEndian.Uint32(data[4:])
	if h.version != shardVersion {
		return h, fmt.Errorf("trace: unsupported shard version %d", h.version)
	}
	n := binary.LittleEndian.Uint64(data[8:])
	stride := binary.LittleEndian.Uint64(data[16:])
	traceLen := binary.LittleEndian.Uint64(data[24:])
	classes := binary.LittleEndian.Uint64(data[32:])
	trimmed := binary.LittleEndian.Uint64(data[40:])
	metaLen := binary.LittleEndian.Uint64(data[48:])
	if n == 0 || stride == 0 || traceLen == 0 || traceLen > stride {
		return h, fmt.Errorf("trace: shard header invalid shape n=%d stride=%d len=%d", n, stride, traceLen)
	}
	if metaLen > shardMaxMeta {
		return h, fmt.Errorf("trace: shard metaLen %d too large", metaLen)
	}
	// valBytes = n*stride*8 must fit the file; do the check in uint64 with
	// overflow guards before converting anything to int.
	const maxBytes = 1 << 62
	if n > maxBytes/stride || n*stride > maxBytes/8 {
		return h, fmt.Errorf("trace: shard header overflows n=%d stride=%d", n, stride)
	}
	valBytes := n * stride * 8
	want := uint64(shardValOff) + valBytes + metaLen
	if uint64(total) != want {
		return h, fmt.Errorf("trace: shard size %d, header implies %d", total, want)
	}
	h.n, h.stride, h.traceLen = int(n), int(stride), int(traceLen)
	h.classes, h.trimmed, h.metaLen = int(classes), int(trimmed), int(metaLen)
	return h, nil
}

// encodeShardMeta appends the per-trace metadata section.
func (s *Store) encodeShardMeta(dst []byte) []byte {
	var u32 [4]byte
	var u64 [8]byte
	putStr := func(v string) {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(v)))
		dst = append(dst, u32[:]...)
		dst = append(dst, v...)
	}
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		dst = append(dst, u64[:]...)
	}
	for i := 0; i < s.n; i++ {
		putStr(s.domains[i])
		putStr(s.attacks[i])
		putU64(uint64(int64(s.labels[i])))
		putU64(uint64(int64(s.periods[i])))
	}
	return dst
}

// decodeShardMeta parses the metadata section into the store's parallel
// arrays. Each declared string length is checked against the remaining
// bytes before it is sliced out.
func decodeShardMeta(s *Store, meta []byte) error {
	getStr := func() (string, error) {
		if len(meta) < 4 {
			return "", errors.New("trace: shard meta truncated")
		}
		l := int(binary.LittleEndian.Uint32(meta))
		meta = meta[4:]
		if l < 0 || l > len(meta) {
			return "", fmt.Errorf("trace: shard meta string length %d exceeds %d remaining", l, len(meta))
		}
		v := string(meta[:l])
		meta = meta[l:]
		return v, nil
	}
	getU64 := func() (uint64, error) {
		if len(meta) < 8 {
			return 0, errors.New("trace: shard meta truncated")
		}
		v := binary.LittleEndian.Uint64(meta)
		meta = meta[8:]
		return v, nil
	}
	s.domains = make([]string, s.n)
	s.attacks = make([]string, s.n)
	s.labels = make([]int, s.n)
	s.periods = make([]sim.Duration, s.n)
	for i := 0; i < s.n; i++ {
		var err error
		if s.domains[i], err = getStr(); err != nil {
			return err
		}
		if s.attacks[i], err = getStr(); err != nil {
			return err
		}
		lab, err := getU64()
		if err != nil {
			return err
		}
		per, err := getU64()
		if err != nil {
			return err
		}
		s.labels[i] = int(int64(lab))
		s.periods[i] = sim.Duration(int64(per))
	}
	if len(meta) != 0 {
		return fmt.Errorf("trace: %d trailing bytes after shard meta", len(meta))
	}
	return nil
}

// nativeLE reports whether the host is little-endian, the precondition for
// aliasing the on-disk value block as []float64 without decoding.
var nativeLE = func() bool {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], 0x0102)
	return *(*uint16)(unsafe.Pointer(&b[0])) == 0x0102
}()

// decodeShard rebuilds a Store from a complete shard file image. With
// alias=true (the mmap path) the returned store's value block aliases
// data's value region when alignment and byte order allow; otherwise the
// values are decoded into fresh heap memory.
func decodeShard(data []byte, alias bool) (*Store, error) {
	h, err := parseShardHeader(data, int64(len(data)))
	if err != nil {
		return nil, err
	}
	valBytes := h.n * h.stride * 8
	valRegion := data[shardValOff : shardValOff+valBytes]
	s := &Store{
		n: h.n, stride: h.stride, traceLen: h.traceLen,
		classes: h.classes, trimmed: h.trimmed,
	}
	if alias && nativeLE && valBytes > 0 && uintptr(unsafe.Pointer(&valRegion[0]))%8 == 0 {
		s.vals = unsafe.Slice((*float64)(unsafe.Pointer(&valRegion[0])), h.n*h.stride)
	} else {
		s.vals = make([]float64, h.n*h.stride)
		for i := range s.vals {
			s.vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(valRegion[i*8:]))
		}
	}
	if err := decodeShardMeta(s, data[shardValOff+valBytes:]); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteShardTo streams the store as a version-1 shard file.
func (s *Store) WriteShardTo(w io.Writer) error {
	meta := s.encodeShardMeta(make([]byte, 0, s.n*48))
	hdr := make([]byte, shardValOff)
	putShardHeader(hdr, shardHeader{
		version: shardVersion,
		n:       s.n, stride: s.stride, traceLen: s.traceLen,
		classes: s.classes, trimmed: s.trimmed, metaLen: len(meta),
	})
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 0, 64*1024)
	for off := 0; off < len(s.vals); {
		buf = buf[:0]
		for len(buf) < 64*1024-8 && off < len(s.vals) {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.vals[off]))
			off++
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	_, err := w.Write(meta)
	return err
}

// WriteShardFile writes the store to path atomically (temp file + rename).
func (s *Store) WriteShardFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".shard-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteShardTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// OpenShardFile opens a shard file as a Store. On platforms with mmap
// support (linux) the value block aliases the mapping — resident memory is
// whatever the OS chooses to page in; elsewhere the file is read into heap
// memory. The returned store owns the mapping for its lifetime (a finalizer
// is deliberately avoided: stores are few and long-lived, and unmapping
// under a live alias would be a use-after-free).
func OpenShardFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if mm, data, merr := mapFile(f, fi.Size()); merr == nil {
		s, err := decodeShard(data, true)
		if err != nil {
			mm.close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		s.mm = mm
		return s, nil
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	s, err := decodeShard(data, false)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Spill demotes the store's value block to an mmap-backed shard file at
// path, freeing the heap copy. Metadata stays resident. Traces and views
// handed out before the spill keep aliasing the old heap block (they stay
// valid and keep that memory alive); views taken afterwards read through
// the mapping. No-op if already spilled. If the platform has no mmap the
// file is still written (a valid second cache tier) but the heap block is
// kept, since dropping it would force a full re-read.
func (s *Store) Spill(path string) error {
	if s.mm != nil {
		return nil
	}
	if _, err := os.Stat(path); err != nil {
		if err := s.WriteShardFile(path); err != nil {
			return err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	mm, data, err := mapFile(f, fi.Size())
	if err != nil {
		return nil // no mmap on this platform: keep the heap block
	}
	re, err := decodeShard(data, true)
	if err != nil || re.mmAliases(data) == false {
		// The file on disk doesn't match this store (hash collision or
		// corruption) or the decode fell back to a copy; keep the heap.
		mm.close()
		if err == nil {
			return nil
		}
		return fmt.Errorf("spill verify %s: %w", path, err)
	}
	if re.n != s.n || re.stride != s.stride || re.traceLen != s.traceLen {
		mm.close()
		return fmt.Errorf("spill verify %s: shape mismatch", path)
	}
	s.vals = re.vals
	s.mm = mm
	return nil
}

// mmAliases reports whether the store's value block lies inside data.
func (s *Store) mmAliases(data []byte) bool {
	if len(s.vals) == 0 || len(data) == 0 {
		return false
	}
	p := uintptr(unsafe.Pointer(&s.vals[0]))
	lo := uintptr(unsafe.Pointer(&data[0]))
	return p >= lo && p < lo+uintptr(len(data))
}

// ReadStoreAny decodes either serialization the repo has ever produced:
// version-1 shard files (by magic) or the seed-era gob Dataset stream. Gob
// datasets are packed into a columnar store, so both formats land behind
// one API.
func ReadStoreAny(r io.Reader) (*Store, error) {
	var magic [4]byte
	n, err := io.ReadFull(r, magic[:])
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, err
	}
	rest := io.MultiReader(bytesReader(magic[:n]), r)
	if n == 4 && binary.LittleEndian.Uint32(magic[:]) == shardMagic {
		data, err := io.ReadAll(rest)
		if err != nil {
			return nil, err
		}
		return decodeShard(data, false)
	}
	ds, err := ReadGob(rest)
	if err != nil {
		return nil, err
	}
	return NewStoreFromDataset(ds)
}

// bytesReader avoids importing bytes for one call site.
type byteSliceReader struct{ b []byte }

func bytesReader(b []byte) io.Reader { return &byteSliceReader{b} }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
