package trace

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Store is a columnar trace arena: every trace's samples live in one
// contiguous row-major float64 block (row i at [i*stride, i*stride+traceLen)),
// with per-trace metadata (domain, label, attack, period) in parallel flat
// arrays. Collection writes rows in place, classifiers and the ML engine read
// zero-copy views, and the value block can live on disk as an mmap-backed
// shard file (see shard.go) so resident bytes are capped by a budget instead
// of dataset size.
//
// A sealed Store is immutable: views returned by Values, Trace, Dataset,
// Shard, and F32 alias the arena and must not be written through. Clone a
// trace (or copy a row) before mutating.
type Store struct {
	n        int // traces
	stride   int // float64 slots reserved per row (>= traceLen)
	traceLen int // uniform logical trace length after Seal
	classes  int
	trimmed  int

	vals []float64 // the value block; heap-owned or an mmap view
	mm   *mapping  // non-nil when vals aliases a mapped shard file
	f32  []float32 // lazily materialized tightly-packed f32 mirror

	domains []string
	labels  []int
	attacks []string
	periods []sim.Duration
}

// Len returns the number of traces.
func (s *Store) Len() int { return s.n }

// TraceLen returns the uniform per-trace sample count.
func (s *Store) TraceLen() int { return s.traceLen }

// NumClasses returns the label-space size recorded at Seal.
func (s *Store) NumClasses() int { return s.classes }

// TrimmedSamples returns the samples dropped aligning traces to the common
// length (see Dataset.TrimmedSamples).
func (s *Store) TrimmedSamples() int { return s.trimmed }

// Values returns trace i's samples as a read-only view of the arena.
func (s *Store) Values(i int) []float64 {
	off := i * s.stride
	return s.vals[off : off+s.traceLen : off+s.traceLen]
}

// Label returns trace i's class index.
func (s *Store) Label(i int) int { return s.labels[i] }

// Domain returns trace i's website domain.
func (s *Store) Domain(i int) string { return s.domains[i] }

// Trace returns a view-backed Trace whose Values alias the arena. The view
// is copy-on-write in the Clone sense: Clone (and Owned) produce an
// arena-independent trace; writing through Values directly is forbidden.
func (s *Store) Trace(i int) Trace {
	return Trace{
		Domain: s.domains[i],
		Label:  s.labels[i],
		Attack: s.attacks[i],
		Period: s.periods[i],
		Values: s.Values(i),
		view:   true,
	}
}

// Dataset materializes the row-oriented view: a Dataset whose traces alias
// the arena (no sample copies) and which keeps a reference back to the
// store. The per-trace headers are fresh, so callers may append or reorder
// traces without affecting the store.
func (s *Store) Dataset() *Dataset {
	ds := &Dataset{
		NumClasses:     s.classes,
		TrimmedSamples: s.trimmed,
		Traces:         make([]Trace, s.n),
		store:          s,
	}
	for i := range ds.Traces {
		ds.Traces[i] = s.Trace(i)
	}
	return ds
}

// ValueBytes returns the size of the full value block (resident or spilled).
func (s *Store) ValueBytes() int64 { return int64(s.n) * int64(s.stride) * 8 }

// ResidentBytes estimates the heap bytes the store pins: the value block
// when heap-owned (an mmap-backed block counts zero — the OS pages it in and
// out under its own memory pressure), the f32 mirror if materialized, and
// the metadata arrays.
func (s *Store) ResidentBytes() int64 {
	var b int64
	if s.mm == nil {
		b += int64(cap(s.vals)) * 8
	}
	b += int64(cap(s.f32)) * 4
	b += int64(s.n) * 48 // labels, periods, string headers
	for i := range s.domains {
		b += int64(len(s.domains[i]) + len(s.attacks[i]))
	}
	return b
}

// Spilled reports whether the value block is file-backed.
func (s *Store) Spilled() bool { return s.mm != nil }

// F32 lazily materializes and returns the tightly-packed float32 mirror of
// the value block (n × TraceLen, row-major): the input format the compiled
// and int8 inference tiers consume, built once per store instead of
// converted on every feed. The mirror is immutable like the arena.
func (s *Store) F32() []float32 {
	if s.f32 != nil {
		return s.f32
	}
	out := make([]float32, s.n*s.traceLen)
	for i := 0; i < s.n; i++ {
		row := s.Values(i)
		dst := out[i*s.traceLen : (i+1)*s.traceLen]
		for j, v := range row {
			dst[j] = float32(v)
		}
	}
	s.f32 = out
	return s.f32
}

// F32Row returns trace i's row of the f32 mirror.
func (s *Store) F32Row(i int) []float32 {
	m := s.F32()
	return m[i*s.traceLen : (i+1)*s.traceLen]
}

// Shard is an immutable contiguous row range [Lo, Hi) of a store, aliasing
// the arena without copying.
type Shard struct {
	st     *Store
	lo, hi int
}

// Shard returns the [lo, hi) row range as a Shard.
func (s *Store) Shard(lo, hi int) Shard {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("trace: Shard [%d,%d) out of range [0,%d)", lo, hi, s.n))
	}
	return Shard{st: s, lo: lo, hi: hi}
}

// Shards splits the store into ceil(n/rows) contiguous shards of at most
// rows traces each.
func (s *Store) Shards(rows int) []Shard {
	if rows <= 0 {
		rows = s.n
	}
	var out []Shard
	for lo := 0; lo < s.n; lo += rows {
		hi := lo + rows
		if hi > s.n {
			hi = s.n
		}
		out = append(out, s.Shard(lo, hi))
	}
	return out
}

// Len returns the shard's trace count.
func (sh Shard) Len() int { return sh.hi - sh.lo }

// Values returns shard-local trace i's samples.
func (sh Shard) Values(i int) []float64 { return sh.st.Values(sh.lo + i) }

// Label returns shard-local trace i's label.
func (sh Shard) Label(i int) int { return sh.st.labels[sh.lo+i] }

// Trace returns shard-local trace i as an arena view.
func (sh Shard) Trace(i int) Trace { return sh.st.Trace(sh.lo + i) }

// View is an immutable arbitrary row subset of a store (a fold's train
// split, a class slice), aliasing the arena without copying.
type View struct {
	st  *Store
	idx []int
}

// View returns the given rows as a View. The index slice is retained, not
// copied; callers must not mutate it afterwards.
func (s *Store) View(idx []int) View {
	for _, i := range idx {
		if i < 0 || i >= s.n {
			panic(fmt.Sprintf("trace: View index %d out of range [0,%d)", i, s.n))
		}
	}
	return View{st: s, idx: idx}
}

// Len returns the view's trace count.
func (v View) Len() int { return len(v.idx) }

// Values returns view-local trace i's samples.
func (v View) Values(i int) []float64 { return v.st.Values(v.idx[i]) }

// Label returns view-local trace i's label.
func (v View) Label(i int) int { return v.st.labels[v.idx[i]] }

// Trace returns view-local trace i as an arena view.
func (v View) Trace(i int) Trace { return v.st.Trace(v.idx[i]) }

// Dataset materializes the view as a row-oriented Dataset aliasing the
// arena (the analogue of Dataset.Subset, without sample copies).
func (v View) Dataset() *Dataset {
	ds := &Dataset{NumClasses: v.st.classes, Traces: make([]Trace, len(v.idx)), store: v.st}
	for i, j := range v.idx {
		ds.Traces[i] = v.st.Trace(j)
	}
	return ds
}

// NewStoreFromDataset packs a row-oriented dataset into a fresh columnar
// store (one copy). Trace lengths must already agree (Validate).
func NewStoreFromDataset(ds *Dataset) (*Store, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := len(ds.Traces)
	stride := len(ds.Traces[0].Values)
	s := &Store{
		n: n, stride: stride, traceLen: stride,
		classes: ds.NumClasses, trimmed: ds.TrimmedSamples,
		vals:    make([]float64, n*stride),
		domains: make([]string, n),
		labels:  make([]int, n),
		attacks: make([]string, n),
		periods: make([]sim.Duration, n),
	}
	for i, t := range ds.Traces {
		copy(s.vals[i*stride:(i+1)*stride], t.Values)
		s.domains[i], s.labels[i], s.attacks[i], s.periods[i] = t.Domain, t.Label, t.Attack, t.Period
	}
	return s, nil
}

// Builder assembles a Store row by row. Rows are pre-reserved at a fixed
// stride, so concurrent collection workers each own disjoint arena rows:
// worker w appends samples directly into Row(i) (no per-trace slice
// allocation) and publishes the finished trace with Finish(i, tr). Seal
// computes the uniform trace length (the minimum row length — jittered
// timers can differ by a sample or two), the trimmed-sample count, and
// freezes the arena.
type Builder struct {
	n      int
	stride int
	vals   []float64

	lens    []int
	domains []string
	labels  []int
	attacks []string
	periods []sim.Duration
	sealed  bool
}

// NewBuilder reserves an in-memory arena for n traces of at most stride
// samples each.
func NewBuilder(n, stride int) *Builder {
	if n <= 0 || stride <= 0 {
		panic(fmt.Sprintf("trace: NewBuilder(%d, %d)", n, stride))
	}
	return &Builder{
		n: n, stride: stride,
		vals:    make([]float64, n*stride),
		lens:    make([]int, n),
		domains: make([]string, n),
		labels:  make([]int, n),
		attacks: make([]string, n),
		periods: make([]sim.Duration, n),
	}
}

// Row returns row i's reserved arena storage as an empty slice with
// capacity stride, ready for append. Each row may be handed to exactly one
// writer at a time; distinct rows are safe concurrently.
func (b *Builder) Row(i int) []float64 {
	off := i * b.stride
	return b.vals[off : off : off+b.stride]
}

// Finish publishes trace i. When tr.Values was appended into Row(i) the
// samples are already in place and only the length is recorded; otherwise
// (a caller that allocated its own slice, or an append that outgrew the
// row and relocated) the first stride values are copied in. Overflow past
// the stride is discarded: Seal's uniform length is the minimum row length,
// so those samples could only matter if every trace overflowed, which Seal
// rejects.
func (b *Builder) Finish(i int, tr Trace) {
	b.domains[i], b.labels[i], b.attacks[i], b.periods[i] = tr.Domain, tr.Label, tr.Attack, tr.Period
	b.lens[i] = len(tr.Values)
	row := b.vals[i*b.stride : (i+1)*b.stride]
	if len(tr.Values) > 0 && &tr.Values[0] != &row[0] {
		copy(row, tr.Values)
	}
}

// sealMeta computes the uniform trace length and trimmed-sample count.
func (b *Builder) sealMeta() (traceLen, trimmed int, err error) {
	if b.sealed {
		return 0, 0, errors.New("trace: Builder already sealed")
	}
	traceLen = b.lens[0]
	for _, l := range b.lens {
		if l < traceLen {
			traceLen = l
		}
	}
	if traceLen == 0 {
		return 0, 0, errors.New("trace: a trace produced no samples")
	}
	for _, l := range b.lens {
		trimmed += l - traceLen
	}
	if traceLen > b.stride {
		return 0, 0, fmt.Errorf("trace: trace length %d exceeds builder stride %d", traceLen, b.stride)
	}
	return traceLen, trimmed, nil
}

// Seal freezes the builder into an immutable Store with the given class
// count. The builder must not be used afterwards.
func (b *Builder) Seal(numClasses int) (*Store, error) {
	traceLen, trimmed, err := b.sealMeta()
	if err != nil {
		return nil, err
	}
	// Overflow rows kept their first stride samples in the arena; since
	// traceLen <= stride those bytes are already the right prefix.
	b.sealed = true
	return &Store{
		n: b.n, stride: b.stride, traceLen: traceLen,
		classes: numClasses, trimmed: trimmed,
		vals:    b.vals,
		domains: b.domains, labels: b.labels, attacks: b.attacks, periods: b.periods,
	}, nil
}
