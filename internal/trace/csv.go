package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset in long form: one row per sample with
// columns trace_id, domain, label, attack, sample, value — convenient for
// external plotting and analysis tools.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"trace_id", "domain", "label", "attack", "sample", "value"}); err != nil {
		return err
	}
	for id, t := range d.Traces {
		for i, v := range t.Values {
			rec := []string{
				strconv.Itoa(id), t.Domain, strconv.Itoa(t.Label), t.Attack,
				strconv.Itoa(i), strconv.FormatFloat(v, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. NumClasses is inferred
// from the largest label.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: csv header: %w", err)
	}
	if len(header) != 6 || header[0] != "trace_id" {
		return nil, fmt.Errorf("trace: unexpected csv header %v", header)
	}
	d := &Dataset{}
	byID := map[int]int{} // trace_id → index in d.Traces
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv read: %w", err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: bad trace_id %q", rec[0])
		}
		label, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("trace: bad label %q", rec[2])
		}
		v, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad value %q", rec[5])
		}
		idx, ok := byID[id]
		if !ok {
			idx = len(d.Traces)
			byID[id] = idx
			d.Traces = append(d.Traces, Trace{Domain: rec[1], Label: label, Attack: rec[3]})
		}
		d.Traces[idx].Values = append(d.Traces[idx].Values, v)
		if label+1 > d.NumClasses {
			d.NumClasses = label + 1
		}
	}
	return d, nil
}

// FilterLabels returns a new dataset containing only traces whose label is
// in keep, with labels re-mapped to a dense 0..len(keep)-1 range in the
// order given.
func (d *Dataset) FilterLabels(keep []int) *Dataset {
	remap := make(map[int]int, len(keep))
	for i, l := range keep {
		remap[l] = i
	}
	out := &Dataset{NumClasses: len(keep)}
	for _, t := range d.Traces {
		if nl, ok := remap[t.Label]; ok {
			nt := t.Clone()
			nt.Label = nl
			out.Traces = append(out.Traces, nt)
		}
	}
	return out
}

// Merge appends the traces of other (labels must already be consistent);
// NumClasses becomes the maximum of the two.
func (d *Dataset) Merge(other *Dataset) {
	d.Traces = append(d.Traces, other.Traces...)
	if other.NumClasses > d.NumClasses {
		d.NumClasses = other.NumClasses
	}
}
