//go:build !linux

package trace

import (
	"errors"
	"os"
)

// mapping is a stub on platforms without the syscall.Mmap path; shard files
// are read through io.ReadAll/ReadAt instead, trading resident memory for
// portability.
type mapping struct{}

var errNoMmap = errors.New("trace: mmap unavailable on this platform")

func mapFile(f *os.File, size int64) (*mapping, []byte, error) {
	return nil, nil, errNoMmap
}

func (m *mapping) close() {}
