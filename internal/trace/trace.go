// Package trace defines the side-channel trace and dataset types shared by
// attackers, classifiers, and the experiment harness, along with
// preprocessing (normalization, downsampling), stratified k-fold splitting,
// and (de)serialization.
package trace

import (
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Trace is one recorded attack trace: counter values per period.
type Trace struct {
	// Domain is the website loaded while recording.
	Domain string
	// Label is the class index used for training (101 = the open-world
	// "non-sensitive" class in open-world experiments).
	Label int
	// Attack names the attacker that produced the trace
	// ("loop-counting", "sweep-counting").
	Attack string
	// Period is the attacker's sampling period P.
	Period sim.Duration
	// Values holds one counter value per period.
	Values []float64

	// view marks a trace whose Values alias shared storage (a Store arena
	// or an mmap-backed shard): reading is free, writing is forbidden.
	// Unexported so gob/json codecs ignore it — serialized traces always
	// come back owned.
	view bool
}

// IsView reports whether Values alias shared storage (a Store arena). View
// traces are copy-on-write: call Owned (or Clone) before mutating Values.
func (t Trace) IsView() bool { return t.view }

// Owned returns a trace safe to mutate: t itself when it already owns its
// values, a deep copy when it is an arena view. The copy-on-write half of
// the view contract — sharing stays free, mutation pays exactly one copy.
func (t Trace) Owned() Trace {
	if !t.view {
		return t
	}
	return t.Clone()
}

// Clone deep-copies the trace. The result owns its values even when t was
// an arena view.
func (t Trace) Clone() Trace {
	v := make([]float64, len(t.Values))
	copy(v, t.Values)
	t.Values = v
	t.view = false
	return t
}

// Normalized returns the trace's values divided by their maximum, the
// normalization the paper applies in Figure 4.
func (t Trace) Normalized() []float64 { return stats.NormalizeMax(t.Values) }

// NormalizedInto is Normalized writing into dst (grown as needed),
// avoiding the per-call allocation on read paths that normalize many
// traces. dst must not alias t.Values. Returns the result slice.
func (t Trace) NormalizedInto(dst []float64) []float64 {
	return stats.NormalizeMaxInto(dst, t.Values)
}

// Dataset is a labeled collection of traces.
type Dataset struct {
	Traces     []Trace
	NumClasses int
	// TrimmedSamples counts samples dropped when the collection harness
	// aligned traces to a common length (jittered timers can make trace
	// lengths differ by a sample or two). Zero when every trace agreed.
	TrimmedSamples int

	// store, when non-nil, is the columnar arena this dataset's traces
	// alias (see Store.Dataset). Unexported so the gob/json codecs ignore
	// it — a deserialized dataset owns its traces and has no store until
	// NewStoreFromDataset packs one.
	store *Store
}

// Store returns the columnar arena backing this dataset's traces, or nil
// for a row-oriented dataset. Fast paths (arena-packed training, the f32
// inference mirror, byte-accurate cache accounting) key off this.
func (d *Dataset) Store() *Store { return d.store }

// Len returns the number of traces.
func (d *Dataset) Len() int { return len(d.Traces) }

// Append adds a trace.
func (d *Dataset) Append(t Trace) { d.Traces = append(d.Traces, t) }

// Validate checks labels are within range and value lengths agree.
func (d *Dataset) Validate() error {
	if d.NumClasses <= 0 {
		return errors.New("trace: dataset has no classes")
	}
	if len(d.Traces) == 0 {
		return errors.New("trace: dataset is empty")
	}
	n := len(d.Traces[0].Values)
	for i, t := range d.Traces {
		if t.Label < 0 || t.Label >= d.NumClasses {
			return fmt.Errorf("trace %d: label %d out of range [0,%d)", i, t.Label, d.NumClasses)
		}
		if len(t.Values) != n {
			return fmt.Errorf("trace %d: length %d != %d", i, len(t.Values), n)
		}
	}
	return nil
}

// ByClass groups trace indices by label.
func (d *Dataset) ByClass() map[int][]int {
	m := make(map[int][]int)
	for i, t := range d.Traces {
		m[t.Label] = append(m[t.Label], i)
	}
	return m
}

// Subset returns a new dataset containing the given trace indices. Traces
// are shared, not copied; a subset of an arena-backed dataset keeps its
// store reference.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{NumClasses: d.NumClasses, store: d.store, Traces: make([]Trace, 0, len(idx))}
	for _, i := range idx {
		out.Traces = append(out.Traces, d.Traces[i])
	}
	return out
}

// Fold is one cross-validation split of trace indices.
type Fold struct {
	Train []int
	Test  []int
}

// KFold produces k stratified folds: each class's traces are spread evenly
// across test sets, as in the paper's 10-fold cross-validation (§4.1).
func (d *Dataset) KFold(k int, seed uint64) ([]Fold, error) {
	if k < 2 {
		return nil, errors.New("trace: k must be >= 2")
	}
	if len(d.Traces) < k {
		return nil, fmt.Errorf("trace: %d traces cannot fill %d folds", len(d.Traces), k)
	}
	rng := sim.NewStream(seed, "kfold")
	testSets := make([][]int, k)
	byClass := d.ByClass()
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	turn := 0
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			testSets[turn%k] = append(testSets[turn%k], i)
			turn++
		}
	}
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		inTest := make(map[int]bool, len(testSets[f]))
		for _, i := range testSets[f] {
			inTest[i] = true
		}
		folds[f].Test = testSets[f]
		for i := range d.Traces {
			if !inTest[i] {
				folds[f].Train = append(folds[f].Train, i)
			}
		}
	}
	return folds, nil
}

// Downsample reduces xs by averaging non-overlapping windows of `factor`
// samples (trailing partial windows are averaged too).
func Downsample(xs []float64, factor int) []float64 {
	return DownsampleInto(nil, xs, factor)
}

// DownsampleInto is Downsample appending into dst[:0]; dst is grown as
// needed and must not alias xs. Returns the result slice.
func DownsampleInto(dst, xs []float64, factor int) []float64 {
	if factor <= 1 {
		if cap(dst) < len(xs) {
			dst = make([]float64, len(xs))
		}
		dst = dst[:len(xs)]
		copy(dst, xs)
		return dst
	}
	n := (len(xs) + factor - 1) / factor
	if cap(dst) < n {
		dst = make([]float64, 0, n)
	}
	out := dst[:n]
	// Full windows first: indexed stores over fixed-width slices keep the
	// inner loop bounds-check-free (this is the hottest loop in the
	// serving preprocessing path). Trailing partial window handled after.
	den := float64(factor)
	full := len(xs) / factor
	for b := 0; b < full; b++ {
		var s float64
		for _, v := range xs[b*factor : (b+1)*factor] {
			s += v
		}
		out[b] = s / den
	}
	if rem := len(xs) - full*factor; rem > 0 {
		var s float64
		for _, v := range xs[full*factor:] {
			s += v
		}
		out[full] = s / float64(rem)
	}
	return out
}

// WriteGob serializes the dataset with encoding/gob.
func (d *Dataset) WriteGob(w io.Writer) error { return gob.NewEncoder(w).Encode(d) }

// ReadGob deserializes a dataset written by WriteGob.
func ReadGob(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: gob decode: %w", err)
	}
	return &d, nil
}

// WriteJSON serializes the dataset as JSON (interoperable with the paper's
// Python tooling formats).
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// ReadJSON deserializes a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: json decode: %w", err)
	}
	return &d, nil
}

// MeanTrace averages the given traces sample-wise (they must share length);
// used for Figure 4's 100-run averaged plots.
func MeanTrace(traces []Trace) ([]float64, error) {
	if len(traces) == 0 {
		return nil, errors.New("trace: MeanTrace of empty set")
	}
	n := len(traces[0].Values)
	out := make([]float64, n)
	for _, t := range traces {
		if len(t.Values) != n {
			return nil, fmt.Errorf("trace: MeanTrace length mismatch %d != %d", len(t.Values), n)
		}
		for i, v := range t.Values {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(traces))
	}
	return out, nil
}
