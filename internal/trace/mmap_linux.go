//go:build linux

package trace

import (
	"os"
	"syscall"
)

// mapping is a read-only mmap of a shard file. It is intentionally never
// unmapped while a Store aliases it; close exists only for the error paths
// of OpenShardFile/Spill, before any alias escapes.
type mapping struct {
	data []byte
}

// mapFile maps size bytes of f read-only and shared.
func mapFile(f *os.File, size int64) (*mapping, []byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return &mapping{data: data}, data, nil
}

func (m *mapping) close() {
	if m.data != nil {
		syscall.Munmap(m.data)
		m.data = nil
	}
}
