package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV loader never panics and that everything it
// accepts round-trips through WriteCSV → ReadCSV unchanged.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	_ = mkDataset(2, 2, 3).WriteCSV(&seed)
	f.Add(seed.String())
	f.Add("trace_id,domain,label,attack,sample,value\n0,a.com,0,loop,0,1.5\n")
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := d.WriteCSV(&out); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		d2, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if d2.Len() != d.Len() {
			t.Fatalf("round trip lost traces: %d vs %d", d2.Len(), d.Len())
		}
	})
}

// FuzzReadGob checks gob decoding never panics on corrupt input.
func FuzzReadGob(f *testing.F) {
	var seed bytes.Buffer
	_ = mkDataset(2, 2, 3).WriteGob(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x13})
	f.Fuzz(func(t *testing.T, in []byte) {
		_, _ = ReadGob(bytes.NewReader(in)) // must not panic
	})
}
