package trace

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"repro/internal/sim"
)

// SpillBuilder assembles a Store whose value block goes straight to disk:
// collection runs in bounded windows of rows against a small reusable heap
// arena, each window is flushed to its final offset in the shard file, and
// Seal reopens the finished file mmap-backed. Resident value memory is one
// window regardless of dataset size — the path CollectDataset takes when a
// dataset's value bytes exceed the cache budget.
//
// Usage: Advance(lo, hi) → Row/Finish for rows in [lo, hi) (concurrently,
// one writer per row, like Builder) → next Advance flushes — then Seal.
type SpillBuilder struct {
	f      *os.File
	path   string
	n      int
	stride int

	window  []float64 // the reusable per-window arena
	enc     []byte    // encode buffer for one window
	lo, hi  int       // current window rows
	flushed int       // rows already on disk

	lens    []int
	domains []string
	labels  []int
	attacks []string
	periods []sim.Duration
	sealed  bool
}

// NewSpillBuilder creates the shard file at path and reserves a window
// arena of windowRows rows. The file is pre-created at header size; value
// windows are written at their final page-aligned offsets as they flush.
func NewSpillBuilder(path string, n, stride, windowRows int) (*SpillBuilder, error) {
	if n <= 0 || stride <= 0 {
		return nil, fmt.Errorf("trace: NewSpillBuilder(%d, %d)", n, stride)
	}
	if windowRows <= 0 || windowRows > n {
		windowRows = n
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &SpillBuilder{
		f: f, path: path, n: n, stride: stride,
		window:  make([]float64, windowRows*stride),
		lens:    make([]int, n),
		domains: make([]string, n),
		labels:  make([]int, n),
		attacks: make([]string, n),
		periods: make([]sim.Duration, n),
	}, nil
}

// WindowRows returns the window capacity in rows.
func (b *SpillBuilder) WindowRows() int { return len(b.window) / b.stride }

// Advance flushes the current window (if any) and repositions the arena
// over rows [lo, hi). Windows must be advanced in order without gaps and
// hi-lo must fit the window arena.
func (b *SpillBuilder) Advance(lo, hi int) error {
	if err := b.flush(); err != nil {
		return err
	}
	if lo != b.flushed || hi < lo || hi > b.n || (hi-lo)*b.stride > len(b.window) {
		return fmt.Errorf("trace: SpillBuilder.Advance(%d, %d) with %d flushed, window %d rows", lo, hi, b.flushed, b.WindowRows())
	}
	b.lo, b.hi = lo, hi
	w := b.window[:(hi-lo)*b.stride]
	for i := range w {
		w[i] = 0
	}
	return nil
}

// Row returns row i's window storage as an empty slice with capacity
// stride, ready for append. i must be inside the current window.
func (b *SpillBuilder) Row(i int) []float64 {
	if i < b.lo || i >= b.hi {
		panic(fmt.Sprintf("trace: SpillBuilder.Row(%d) outside window [%d,%d)", i, b.lo, b.hi))
	}
	off := (i - b.lo) * b.stride
	return b.window[off : off : off+b.stride]
}

// Finish publishes trace i into the current window (same contract as
// Builder.Finish).
func (b *SpillBuilder) Finish(i int, tr Trace) {
	if i < b.lo || i >= b.hi {
		panic(fmt.Sprintf("trace: SpillBuilder.Finish(%d) outside window [%d,%d)", i, b.lo, b.hi))
	}
	b.domains[i], b.labels[i], b.attacks[i], b.periods[i] = tr.Domain, tr.Label, tr.Attack, tr.Period
	b.lens[i] = len(tr.Values)
	off := (i - b.lo) * b.stride
	row := b.window[off : off+b.stride]
	if len(tr.Values) > 0 && &tr.Values[0] != &row[0] {
		copy(row, tr.Values)
	}
}

// flush encodes the current window little-endian and writes it at its
// final offset in the value block.
func (b *SpillBuilder) flush() error {
	rows := b.hi - b.lo
	if rows == 0 {
		return nil
	}
	vals := b.window[:rows*b.stride]
	need := len(vals) * 8
	if cap(b.enc) < need {
		b.enc = make([]byte, need)
	}
	enc := b.enc[:need]
	for i, v := range vals {
		binary.LittleEndian.PutUint64(enc[i*8:], math.Float64bits(v))
	}
	off := int64(shardValOff) + int64(b.lo)*int64(b.stride)*8
	if _, err := b.f.WriteAt(enc, off); err != nil {
		return err
	}
	b.flushed = b.hi
	b.lo = b.hi
	return nil
}

// Seal flushes the last window, writes metadata and header, closes the
// file, and reopens it as an mmap-backed (or read-copy fallback) Store.
func (b *SpillBuilder) Seal(numClasses int) (*Store, error) {
	if b.sealed {
		return nil, fmt.Errorf("trace: SpillBuilder already sealed")
	}
	b.sealed = true
	defer b.f.Close()
	if err := b.flush(); err != nil {
		return nil, err
	}
	if b.flushed != b.n {
		return nil, fmt.Errorf("trace: SpillBuilder sealed with %d/%d rows flushed", b.flushed, b.n)
	}
	// Compute the uniform length the same way Builder does.
	traceLen := b.lens[0]
	trimmed := 0
	for _, l := range b.lens {
		if l < traceLen {
			traceLen = l
		}
	}
	if traceLen == 0 {
		return nil, fmt.Errorf("trace: a trace produced no samples")
	}
	if traceLen > b.stride {
		return nil, fmt.Errorf("trace: trace length %d exceeds builder stride %d", traceLen, b.stride)
	}
	for _, l := range b.lens {
		trimmed += l - traceLen
	}
	meta := (&Store{
		n: b.n, domains: b.domains, attacks: b.attacks,
		labels: b.labels, periods: b.periods,
	}).encodeShardMeta(make([]byte, 0, b.n*48))
	valBytes := int64(b.n) * int64(b.stride) * 8
	if _, err := b.f.WriteAt(meta, shardValOff+valBytes); err != nil {
		return nil, err
	}
	hdr := make([]byte, shardHdrLen)
	putShardHeader(hdr, shardHeader{
		version: shardVersion,
		n:       b.n, stride: b.stride, traceLen: traceLen,
		classes: numClasses, trimmed: trimmed, metaLen: len(meta),
	})
	if _, err := b.f.WriteAt(hdr, 0); err != nil {
		return nil, err
	}
	if err := b.f.Sync(); err != nil {
		return nil, err
	}
	if err := b.f.Close(); err != nil {
		return nil, err
	}
	return OpenShardFile(b.path)
}

// Abort closes and removes the partial file (safe after Seal: no-op).
func (b *SpillBuilder) Abort() {
	if !b.sealed {
		b.f.Close()
		os.Remove(b.path)
		b.sealed = true
	}
}
