// Package kutrace is a KUtrace-style whole-machine tracer (Sites,
// "Understanding Software Dynamics"), the tool the paper names for going
// deeper than eBPF (§5.2): instead of sampling specific tracepoints, it
// records *every* kernel/user transition on every core into a compactly
// encoded timeline, and produces CPU-time breakdowns per cause.
//
// In the simulation the ground truth is available from each core's steal
// log, so the tracer's job is the KUtrace-like part: merging per-core
// spans into one timeline, computing breakdowns, and encoding the result
// in a compact varint-delta binary format suitable for long traces.
package kutrace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Span is one interval of kernel execution on a core.
type Span struct {
	Core       int
	Start, End sim.Time
	Cause      cpu.Cause
}

// Duration returns the span length.
func (s Span) Duration() sim.Duration { return s.End - s.Start }

// Timeline is a whole-machine kernel-time record over [0, Until].
type Timeline struct {
	Cores int
	Until sim.Time
	Spans []Span // sorted by (Start, Core)
}

// Capture builds a timeline from every core's steal log. RecordSteals must
// have been enabled on the cores of interest before the workload ran;
// cores without recording contribute no spans.
func Capture(m *kernel.Machine, until sim.Time) *Timeline {
	tl := &Timeline{Cores: len(m.Cores), Until: until}
	for _, c := range m.Cores {
		for _, st := range c.Steals() {
			if st.Start >= until {
				continue
			}
			end := st.End
			if end > until {
				end = until
			}
			tl.Spans = append(tl.Spans, Span{Core: c.ID, Start: st.Start, End: end, Cause: st.Cause})
		}
	}
	sort.Slice(tl.Spans, func(i, j int) bool {
		if tl.Spans[i].Start != tl.Spans[j].Start {
			return tl.Spans[i].Start < tl.Spans[j].Start
		}
		return tl.Spans[i].Core < tl.Spans[j].Core
	})
	return tl
}

// Breakdown is per-cause kernel time for one core, plus derived user time.
type Breakdown struct {
	Core    int
	ByCause map[cpu.Cause]sim.Duration
	Kernel  sim.Duration
	User    sim.Duration
}

// BreakdownFor computes the core's CPU-time split over the timeline window.
func (tl *Timeline) BreakdownFor(core int) Breakdown {
	b := Breakdown{Core: core, ByCause: make(map[cpu.Cause]sim.Duration)}
	for _, s := range tl.Spans {
		if s.Core != core {
			continue
		}
		b.ByCause[s.Cause] += s.Duration()
		b.Kernel += s.Duration()
	}
	b.User = sim.Duration(tl.Until) - b.Kernel
	return b
}

// String renders the breakdown as a KUtrace-style report.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "core %d: user %.3f%% kernel %.3f%%\n",
		b.Core, 100*float64(b.User)/float64(b.User+b.Kernel),
		100*float64(b.Kernel)/float64(b.User+b.Kernel))
	causes := make([]cpu.Cause, 0, len(b.ByCause))
	for c := range b.ByCause {
		causes = append(causes, c)
	}
	sort.Slice(causes, func(i, j int) bool { return b.ByCause[causes[i]] > b.ByCause[causes[j]] })
	for _, c := range causes {
		fmt.Fprintf(&sb, "  %-14s %12v\n", c, b.ByCause[c])
	}
	return sb.String()
}

// magic identifies the binary encoding.
var magic = [4]byte{'K', 'U', 't', '1'}

// Encode writes the timeline in a compact binary format: varint header
// plus per-span varint deltas (start delta, length, core, cause). Long
// traces compress to a few bytes per event like real KUtrace buffers.
func (tl *Timeline) Encode(w io.Writer) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	buf := make([]byte, binary.MaxVarintLen64)
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := w.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(tl.Cores)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(tl.Until)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(tl.Spans))); err != nil {
		return err
	}
	var last sim.Time
	for _, s := range tl.Spans {
		if err := writeUvarint(uint64(s.Start - last)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(s.Duration())); err != nil {
			return err
		}
		if err := writeUvarint(uint64(s.Core)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(s.Cause)); err != nil {
			return err
		}
		last = s.Start
	}
	return nil
}

// Decode parses a timeline written by Encode.
func Decode(r io.Reader) (*Timeline, error) {
	br := asByteReader(r)
	var got [4]byte
	for i := range got {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("kutrace: short magic: %w", err)
		}
		got[i] = b
	}
	if got != magic {
		return nil, errors.New("kutrace: bad magic")
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	cores, err := readUvarint()
	if err != nil {
		return nil, err
	}
	until, err := readUvarint()
	if err != nil {
		return nil, err
	}
	n, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("kutrace: implausible span count %d", n)
	}
	// Do not trust n for preallocation: a forged header could demand
	// gigabytes before the first truncated varint is noticed (found by
	// FuzzDecode). Cap the initial capacity and let append grow.
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	tl := &Timeline{Cores: int(cores), Until: sim.Time(until), Spans: make([]Span, 0, capHint)}
	var last sim.Time
	for i := uint64(0); i < n; i++ {
		ds, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("kutrace: span %d: %w", i, err)
		}
		dur, err := readUvarint()
		if err != nil {
			return nil, err
		}
		core, err := readUvarint()
		if err != nil {
			return nil, err
		}
		cause, err := readUvarint()
		if err != nil {
			return nil, err
		}
		start := last + sim.Time(ds)
		tl.Spans = append(tl.Spans, Span{
			Core: int(core), Start: start, End: start + sim.Duration(dur),
			Cause: cpu.Cause(cause),
		})
		last = start
	}
	return tl, nil
}

type byteReader interface {
	io.Reader
	io.ByteReader
}

// asByteReader adapts any reader for varint decoding.
func asByteReader(r io.Reader) byteReader {
	if br, ok := r.(byteReader); ok {
		return br
	}
	return &simpleByteReader{r: r}
}

type simpleByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (s *simpleByteReader) Read(p []byte) (int, error) { return s.r.Read(p) }
func (s *simpleByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(s.r, s.buf[:]); err != nil {
		return 0, err
	}
	return s.buf[0], nil
}

// Render draws each core's kernel occupancy as an ASCII strip of `width`
// columns over [0, Until]; '#' marks columns containing kernel time.
func (tl *Timeline) Render(width int) string {
	if width <= 0 || tl.Until <= 0 {
		return ""
	}
	rows := make([][]byte, tl.Cores)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, s := range tl.Spans {
		if s.Core >= tl.Cores {
			continue
		}
		lo := int(int64(s.Start) * int64(width) / int64(tl.Until))
		hi := int(int64(s.End) * int64(width) / int64(tl.Until))
		for c := lo; c <= hi && c < width; c++ {
			rows[s.Core][c] = '#'
		}
	}
	var sb strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&sb, "cpu%d |%s|\n", i, row)
	}
	return sb.String()
}
