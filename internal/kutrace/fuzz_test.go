package kutrace

import (
	"bytes"
	"testing"
)

// FuzzDecode checks the compact binary decoder never panics or
// over-allocates on corrupt input, and that valid output re-encodes.
func FuzzDecode(f *testing.F) {
	tl := &Timeline{Cores: 2, Until: 1000, Spans: []Span{
		{Core: 0, Start: 10, End: 20, Cause: 1},
		{Core: 1, Start: 15, End: 40, Cause: 3},
	}}
	var seed bytes.Buffer
	_ = tl.Encode(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte("KUt1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := Decode(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("accepted timeline failed to encode: %v", err)
		}
	})
}
