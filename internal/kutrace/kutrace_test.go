package kutrace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/browser"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/website"
)

func capturedMachine(t *testing.T) (*kernel.Machine, *Timeline) {
	t.Helper()
	m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 3})
	for _, c := range m.Cores {
		c.RecordSteals(true)
	}
	visit := website.ProfileFor("amazon.com").Instantiate(m.RNG().Fork("v"))
	browser.LoadPage(m, visit, 1.0, 3*sim.Second)
	m.Eng.Run(3 * sim.Second)
	return m, Capture(m, 3*sim.Second)
}

func TestCaptureSorted(t *testing.T) {
	_, tl := capturedMachine(t)
	if len(tl.Spans) < 1000 {
		t.Fatalf("spans = %d, want a busy timeline", len(tl.Spans))
	}
	for i := 1; i < len(tl.Spans); i++ {
		if tl.Spans[i].Start < tl.Spans[i-1].Start {
			t.Fatal("spans not sorted")
		}
	}
	if tl.Cores != 4 {
		t.Fatalf("cores = %d", tl.Cores)
	}
}

func TestBreakdownConservation(t *testing.T) {
	m, tl := capturedMachine(t)
	for core := 0; core < tl.Cores; core++ {
		b := tl.BreakdownFor(core)
		if b.User+b.Kernel != sim.Duration(tl.Until) {
			t.Fatalf("core %d: user %v + kernel %v != %v", core, b.User, b.Kernel, tl.Until)
		}
		// Kernel time must match the core's stolen-time accounting up
		// to clipping: a handler in flight at the capture horizon is
		// clipped by Capture but pre-booked in StolenAt.
		got, want := b.Kernel, m.Cores[core].StolenAt(m.Eng.Now())
		if d := want - got; d < 0 || d > 200*sim.Microsecond {
			t.Fatalf("core %d: breakdown kernel %v vs stolen %v", core, got, want)
		}
		if b.String() == "" {
			t.Fatal("empty report")
		}
	}
	// Attacker core must show timer + softirq causes (non-movable).
	b := tl.BreakdownFor(kernel.AttackerCore)
	if b.ByCause[cpu.CauseTimer] == 0 || b.ByCause[cpu.CauseSoftirq] == 0 {
		t.Fatalf("missing causes: %v", b.ByCause)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, tl := capturedMachine(t)
	var buf bytes.Buffer
	if err := tl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Compactness: a few bytes per span.
	if perSpan := float64(buf.Len()) / float64(len(tl.Spans)); perSpan > 12 {
		t.Fatalf("encoding too fat: %.1f bytes/span", perSpan)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cores != tl.Cores || got.Until != tl.Until || len(got.Spans) != len(tl.Spans) {
		t.Fatal("header mismatch")
	}
	for i := range tl.Spans {
		if got.Spans[i] != tl.Spans[i] {
			t.Fatalf("span %d mismatch: %+v vs %+v", i, got.Spans[i], tl.Spans[i])
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("xx"),
		[]byte("BAD1aaaaaaa"),
		append([]byte("KUt1"), 0xff), // truncated varints
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

// Property: encode/decode round-trips arbitrary small timelines exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		tl := &Timeline{Cores: 4, Until: 1 << 40}
		var at sim.Time
		for i, r := range raw {
			at += sim.Time(r)
			tl.Spans = append(tl.Spans, Span{
				Core:  i % 4,
				Start: at,
				End:   at + sim.Duration(r%977) + 1,
				Cause: cpu.Cause(uint8(r) % uint8(cpu.NumCauses)),
			})
		}
		var buf bytes.Buffer
		if err := tl.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if len(got.Spans) != len(tl.Spans) {
			return false
		}
		for i := range tl.Spans {
			if got.Spans[i] != tl.Spans[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRender(t *testing.T) {
	_, tl := capturedMachine(t)
	out := tl.Render(60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d", len(lines))
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no kernel time rendered")
	}
	if tl.Render(0) != "" {
		t.Fatal("zero width")
	}
}
