package defense

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/clockface"
	"repro/internal/interrupt"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestRandomizedTimerWrapper(t *testing.T) {
	tm := RandomizedTimer(sim.NewStream(1, "rt"))
	if tm.Name() != "randomized" {
		t.Fatal("wrong timer")
	}
}

func TestInterruptNoiseGeneratesInterrupts(t *testing.T) {
	quiet := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 2})
	quiet.Eng.Run(2 * sim.Second)
	base := quiet.Ctl.TotalCount(interrupt.NetRX)

	noisy := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 2})
	n := DefaultInterruptNoise()
	n.Start(noisy, 2*sim.Second)
	noisy.Eng.Run(2 * sim.Second)
	withNoise := noisy.Ctl.TotalCount(interrupt.NetRX)

	if withNoise < base+800 {
		t.Fatalf("noise NetRX: %d vs base %d, want a clear increase", withNoise, base)
	}
	if noisy.Ctl.TotalCount(interrupt.IPIResched) < 20 {
		t.Fatal("noise should send resched IPIs")
	}
}

func TestInterruptNoiseStop(t *testing.T) {
	m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 3})
	n := DefaultInterruptNoise()
	n.Start(m, 10*sim.Second)
	m.Eng.Run(sim.Second)
	n.Stop()
	at1s := m.Ctl.TotalCount(interrupt.NetRX)
	m.Eng.Run(2 * sim.Second)
	after := m.Ctl.TotalCount(interrupt.NetRX)
	// Only baseline trickle after stop.
	if after-at1s > at1s/2 {
		t.Fatalf("noise kept running after Stop: %d -> %d", at1s, after)
	}
}

func TestInterruptNoiseDepressesLoopCounter(t *testing.T) {
	collect := func(noise bool) []float64 {
		m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 4})
		if noise {
			DefaultInterruptNoise().Start(m, 5*sim.Second)
		}
		tr, err := attack.CollectLoop(m, attack.Config{
			Timer: clockface.Precise{}, Period: 5 * sim.Millisecond,
			Samples: 400, Variant: attack.JS,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Values
	}
	clean, noisy := collect(false), collect(true)
	if stats.Mean(noisy) >= stats.Mean(clean) {
		t.Fatalf("noise did not depress counters: %v vs %v", stats.Mean(noisy), stats.Mean(clean))
	}
	// Noise must add variance (randomness, not a constant offset).
	if stats.StdDev(noisy) <= stats.StdDev(clean) {
		t.Fatalf("noise did not add variance: %v vs %v", stats.StdDev(noisy), stats.StdDev(clean))
	}
}

func TestCacheSweepNoiseFloodsMisses(t *testing.T) {
	m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 5})
	c := DefaultCacheSweepNoise()
	c.Start(m, 2*sim.Second)
	m.Eng.Run(sim.Second)
	// Attacker residency should be (near) zero at any instant.
	if m.Cache.Resident() > float64(m.Cache.Geometry().Lines())/2 {
		t.Fatalf("resident = %v, want flushed", m.Cache.Resident())
	}
	c.Stop()
}

func TestCacheSweepNoiseSlowsSweepAttacker(t *testing.T) {
	collect := func(noise bool) float64 {
		m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 6})
		if noise {
			DefaultCacheSweepNoise().Start(m, 5*sim.Second)
		}
		tr, err := attack.CollectSweep(m, attack.Config{
			Timer: clockface.Precise{}, Period: 5 * sim.Millisecond,
			Samples: 300, Variant: attack.JS,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(tr.Values)
	}
	clean, noisy := collect(false), collect(true)
	// The slowdown is measurable but mild: the attacker re-fills lines
	// as fast as the co-sweeper evicts them, which is also why the
	// paper finds this countermeasure barely moves accuracy (Table 2).
	if noisy >= clean-0.5 {
		t.Fatalf("cache noise did not slow sweeps at all: %v vs %v", noisy, clean)
	}
	if noisy < clean*0.5 {
		t.Fatalf("cache noise implausibly devastating: %v vs %v", noisy, clean)
	}
}

func TestCacheSweepNoiseBarelyAffectsLoopAttacker(t *testing.T) {
	collect := func(noise bool) float64 {
		m := kernel.NewMachine(kernel.Config{OS: kernel.Linux, Seed: 7})
		if noise {
			DefaultCacheSweepNoise().Start(m, 5*sim.Second)
		}
		tr, err := attack.CollectLoop(m, attack.Config{
			Timer: clockface.Precise{}, Period: 5 * sim.Millisecond,
			Samples: 300, Variant: attack.JS,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(tr.Values)
	}
	clean, noisy := collect(false), collect(true)
	// Within ~15%: the loop attacker makes no memory accesses, so only
	// the turbo effect and sparse wakeups remain.
	if noisy < clean*0.85 {
		t.Fatalf("cache noise hit the loop attacker too hard: %v vs %v", noisy, clean)
	}
}

func TestPageLoadSlowdownConstant(t *testing.T) {
	if PageLoadSlowdown < 1.15 || PageLoadSlowdown > 1.17 {
		t.Fatalf("slowdown = %v", PageLoadSlowdown)
	}
}
