// Package defense implements the paper's two countermeasures (§6): the
// randomized timer (deployed through clockface.Randomized) and the
// spurious-interrupt noise injector, plus the cache-sweep noise
// countermeasure of Shusterman et al. used as the Table 2 baseline.
package defense

import (
	"repro/internal/clockface"
	"repro/internal/interrupt"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// RandomizedTimer returns the paper's §6.1 randomized timer backed by the
// given stream. It is a convenience wrapper so harness code treats the
// defense uniformly with the noise injectors.
func RandomizedTimer(rng *sim.Stream) clockface.Timer {
	return clockface.NewRandomized(rng)
}

// InterruptNoise is the Chrome-extension countermeasure (§6.2): it
// schedules "thousands of activity bursts and network pings at random
// intervals, which generates thousands of interrupts" while sites load.
type InterruptNoise struct {
	// BurstsPerSec is the mean macro-burst arrival rate. Each burst is a
	// sustained storm of pings and deferred work lasting BurstLen, so the
	// noise *looks like page activity* rather than a uniform hum — the
	// property that actually confuses the classifier.
	BurstsPerSec float64
	// BurstLen bounds (uniform) the duration of one burst.
	BurstLenLo, BurstLenHi sim.Duration
	// PingRate bounds (uniform, per burst) the in-burst NIC ping rate.
	PingRateLo, PingRateHi float64

	stopped bool
}

// DefaultInterruptNoise matches the paper's effectiveness band (Table 2:
// loop-counting accuracy 95.7% → 62.0%).
func DefaultInterruptNoise() *InterruptNoise {
	return &InterruptNoise{
		BurstsPerSec: 2.2,
		BurstLenLo:   100 * sim.Millisecond, BurstLenHi: sim.Second,
		PingRateLo: 1800, PingRateHi: 9000,
	}
}

// PageLoadSlowdown is the measured cost of the extension: average load
// time grows from 3.12 s to 3.61 s, a 15.7% increase (§6.2).
const PageLoadSlowdown = 3.61 / 3.12

// Start schedules the noise generators on machine m until `until`.
func (n *InterruptNoise) Start(m *kernel.Machine, until sim.Time) {
	rng := m.RNG().Fork("defense-interrupt-noise")
	var nextBurst func()
	nextBurst = func() {
		if n.stopped || m.Eng.Now() >= until {
			return
		}
		end := m.Eng.Now() + rng.DurUniform(n.BurstLenLo, n.BurstLenHi)
		if end > until {
			end = until
		}
		pingGap := sim.Duration(float64(sim.Second) / rng.Uniform(n.PingRateLo, n.PingRateHi))
		var ping func()
		ping = func() {
			if n.stopped || m.Eng.Now() >= end {
				return
			}
			m.Ctl.RaiseIRQ(interrupt.NetRX)
			// Each ping's packet processing fills socket buffers and
			// skb pools, evicting attacker cache lines as a side
			// effect — a second reason interrupt noise also degrades
			// the sweep-counting attack (Table 2).
			m.Cache.VictimAccesses(768)
			if rng.Bernoulli(0.15) {
				m.Ctl.DeferSoftirq(interrupt.SoftTimer, kernel.VictimCore)
			}
			if rng.Bernoulli(0.05) {
				m.Ctl.RaiseIRQ(interrupt.Graphics)
			}
			if rng.Bernoulli(0.03) {
				m.Ctl.SendResched(rng.IntN(m.Ctl.NumCores()))
			}
			m.Eng.After(rng.DurExp(pingGap), ping)
		}
		ping()
		m.Eng.After(rng.DurExp(sim.Duration(float64(sim.Second)/n.BurstsPerSec)), nextBurst)
	}
	m.Eng.After(rng.DurExp(sim.Duration(float64(sim.Second)/n.BurstsPerSec)), nextBurst)
}

// Stop halts the generators.
func (n *InterruptNoise) Stop() { n.stopped = true }

// CacheSweepNoise is the countermeasure proposed by Shusterman et al.:
// a background process repeatedly evicts the entire LLC. It devastates the
// *cache* component of the sweep-counting signal (every sweep misses
// everywhere) but barely touches the interrupt component — which is the
// paper's Table 2 evidence that the interrupt channel dominates.
type CacheSweepNoise struct {
	// SweepsPerSec is how often the noise process completes a full LLC
	// eviction pass.
	SweepsPerSec float64
	// EffectiveFraction is the share of each noise pass that survives as
	// evictions of *attacker* lines. The attacker sweeps concurrently
	// and immediately reloads its lines, so only the noise traffic that
	// interleaves between the attacker's own touches of a line sticks;
	// a full-pass model would wrongly saturate the attacker's sweeps and
	// mask the victim's cache signal entirely.
	EffectiveFraction float64

	stopped bool
}

// DefaultCacheSweepNoise sweeps continuously (~6 kHz for an 8 MiB LLC at
// ~160 µs per pass).
func DefaultCacheSweepNoise() *CacheSweepNoise {
	return &CacheSweepNoise{SweepsPerSec: 6000, EffectiveFraction: 0.008}
}

// Start schedules LLC eviction passes until `until`. The noise process is
// CPU-bound on its own core; its only cross-core effects are the cache
// evictions and occasional scheduler wakeups.
func (c *CacheSweepNoise) Start(m *kernel.Machine, until sim.Time) {
	rng := m.RNG().Fork("defense-cache-noise")
	period := sim.Duration(float64(sim.Second) / c.SweepsPerSec)
	// The noise process shares the machine with everything else, so its
	// sweep rate wanders (scheduling, DRAM contention); the wandering is
	// what injects *variance* into the sweep attacker's costs rather
	// than a constant slowdown it could calibrate away.
	intensity := 1.0
	m.Eng.Tick(0, 200*sim.Millisecond, func(sim.Time) {
		intensity = rng.Uniform(0.35, 1.0)
	})
	var sweep func()
	sweep = func() {
		if c.stopped || m.Eng.Now() >= until {
			return
		}
		// One pass touches every line of an LLC-sized buffer; only the
		// effective fraction lands as attacker-line evictions (see
		// EffectiveFraction).
		m.Cache.VictimAccesses(float64(m.Cache.Geometry().Lines()) * intensity * c.EffectiveFraction)
		// The noise process occasionally blocks and wakes (page faults,
		// timer slack), producing sparse resched IPIs.
		if rng.Bernoulli(0.001) {
			m.Ctl.SendResched(rng.IntN(m.Ctl.NumCores()))
		}
		m.Eng.After(rng.DurLogNormal(period, 0.1, period/2, period*4), sweep)
	}
	m.Eng.After(period, sweep)
	// A busy background process also holds the package at all-core turbo.
	m.Eng.Tick(0, 10*sim.Millisecond, func(sim.Time) {
		if !c.stopped {
			m.Gov.ReportLoad(0.15)
		}
	})
}

// Stop halts the noise process.
func (c *CacheSweepNoise) Stop() { c.stopped = true }
