package kernel

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/interrupt"
	"repro/internal/sim"
)

func TestOSString(t *testing.T) {
	if Linux.String() != "linux" || Windows.String() != "windows" || MacOS.String() != "macos" {
		t.Fatal("OS names")
	}
	if OS(9).String() == "" {
		t.Fatal("unknown OS should render")
	}
}

func TestProfiles(t *testing.T) {
	for _, os := range []OS{Linux, Windows, MacOS} {
		p := profileFor(os)
		if p.irq.TickHZ <= 0 || p.baselineIRQRate <= 0 || p.baselineSoftRate <= 0 {
			t.Errorf("%v profile invalid: %+v", os, p)
		}
	}
	if profileFor(Linux).irq.TickHZ != 250 {
		t.Error("Linux should tick at 250 Hz")
	}
}

func TestMachineBootsAndTicks(t *testing.T) {
	m := NewMachine(Config{OS: Linux, Seed: 1})
	m.Eng.Run(sim.Second)
	ticks := m.Ctl.Counts(interrupt.LocalTimer, AttackerCore)
	if ticks < 240 || ticks > 260 {
		t.Fatalf("attacker-core ticks = %d, want ~250", ticks)
	}
	// Baseline device IRQs should have fired somewhere.
	total := m.Ctl.TotalCount(interrupt.SATA) + m.Ctl.TotalCount(interrupt.USB)
	if total < 10 {
		t.Fatalf("baseline IRQs = %d, want >= 10", total)
	}
	if m.Attacker().ID != AttackerCore {
		t.Fatal("Attacker() core id")
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() sim.Duration {
		m := NewMachine(Config{OS: Linux, Seed: 99})
		m.Eng.Run(sim.Second)
		return m.Attacker().StolenAt(m.Eng.Now())
	}
	if run() != run() {
		t.Fatal("same seed must produce identical stolen time")
	}
	m2 := NewMachine(Config{OS: Linux, Seed: 100})
	m2.Eng.Run(sim.Second)
	m1 := NewMachine(Config{OS: Linux, Seed: 99})
	m1.Eng.Run(sim.Second)
	if m1.Attacker().StolenAt(m1.Eng.Now()) == m2.Attacker().StolenAt(m2.Eng.Now()) {
		t.Fatal("different seeds should diverge")
	}
}

// TestResetEqualsFresh drives one machine through a sequence of
// heterogeneous configurations via Reset and checks that each run's per-core
// stolen time and interrupt counters match a fresh NewMachine with the same
// config — the contract the collection arenas depend on.
func TestResetEqualsFresh(t *testing.T) {
	policy := interrupt.SoftirqRaisingCore
	configs := []Config{
		{OS: Linux, Seed: 5},
		{OS: Windows, Seed: 6, BackgroundNoise: true},
		{OS: MacOS, Seed: 7, SoftirqPolicy: &policy},
		{OS: Linux, Seed: 8, Isolation: Isolation{
			FixedFreqGHz: 2.4, PinCores: true, RemoveIRQs: true, SeparateVMs: true,
		}},
		{OS: Linux, Seed: 5}, // back to the first config: full state reset
	}
	fingerprint := func(m *Machine) []uint64 {
		var fp []uint64
		m.Eng.Run(sim.Second / 2)
		now := m.Eng.Now()
		for _, c := range m.Cores {
			fp = append(fp, uint64(c.StolenAt(now)))
		}
		for ty := interrupt.Type(0); ty < interrupt.NumTypes; ty++ {
			fp = append(fp, m.Ctl.TotalCount(ty))
		}
		fp = append(fp, m.Eng.Processed)
		return fp
	}
	reused := &Machine{} // Reset boots zero-value machines too
	for i, cfg := range configs {
		reused.Reset(cfg)
		got := fingerprint(reused)
		want := fingerprint(NewMachine(cfg))
		if len(got) != len(want) {
			t.Fatalf("config %d: fingerprint lengths differ", i)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("config %d: reused machine diverged from fresh at field %d: got %d, want %d",
					i, j, got[j], want[j])
			}
		}
	}
}

func TestIsolationFixedFreq(t *testing.T) {
	m := NewMachine(Config{OS: Linux, Seed: 1, Isolation: Isolation{FixedFreqGHz: 2.5}})
	for i := 0; i < 100; i++ {
		m.Sched.VictimBurst(sim.Millisecond, 1.0)
	}
	m.Eng.Run(sim.Second)
	if f := m.Attacker().Freq(); f != 2.5 {
		t.Fatalf("freq = %v, want fixed 2.5", f)
	}
}

func TestIsolationRemoveIRQs(t *testing.T) {
	m := NewMachine(Config{OS: Linux, Seed: 2, Isolation: Isolation{RemoveIRQs: true}})
	m.Eng.Run(2 * sim.Second)
	for _, ty := range []interrupt.Type{interrupt.SATA, interrupt.USB, interrupt.NetRX} {
		if n := m.Ctl.Counts(ty, AttackerCore); n != 0 {
			t.Fatalf("%v delivered %d times to attacker core despite irqbalance", ty, n)
		}
	}
	// Non-movable ticks still arrive.
	if m.Ctl.Counts(interrupt.LocalTimer, AttackerCore) == 0 {
		t.Fatal("timer ticks must be non-movable")
	}
}

func TestIsolationVMAmplifies(t *testing.T) {
	stolen := func(vm bool) sim.Duration {
		m := NewMachine(Config{OS: Linux, Seed: 3, Isolation: Isolation{SeparateVMs: vm}})
		m.Eng.Run(2 * sim.Second)
		return m.Attacker().StolenAt(m.Eng.Now())
	}
	plain, vm := stolen(false), stolen(true)
	if float64(vm) < 1.2*float64(plain) {
		t.Fatalf("VM stolen %v not amplified vs %v", vm, plain)
	}
}

func TestSchedulerPinnedNeverPreempts(t *testing.T) {
	m := NewMachine(Config{OS: Linux, Seed: 4, Isolation: Isolation{PinCores: true}})
	if !m.Sched.Pinned() {
		t.Fatal("scheduler should be pinned")
	}
	for i := 0; i < 2000; i++ {
		m.Sched.VictimBurst(2*sim.Millisecond, 0.8)
	}
	if m.Sched.Preemptions() != 0 {
		t.Fatalf("pinned scheduler preempted attacker %d times", m.Sched.Preemptions())
	}
	if m.Attacker().StolenByCause(cpu.CausePreempt) != 0 {
		t.Fatal("attacker lost time to preemption while pinned")
	}
}

func TestSchedulerUnpinnedSometimesPreempts(t *testing.T) {
	m := NewMachine(Config{OS: Linux, Seed: 5})
	for i := 0; i < 2000; i++ {
		m.Sched.VictimBurst(2*sim.Millisecond, 0.8)
	}
	if m.Sched.Preemptions() == 0 {
		t.Fatal("unpinned scheduler never preempted the attacker in 2000 bursts")
	}
	// Preemption must be rare (Table 3: pinning changes accuracy 0.2%).
	if m.Sched.Preemptions() > 200 {
		t.Fatalf("preemptions = %d, too frequent", m.Sched.Preemptions())
	}
}

func TestVictimBurstSendsResched(t *testing.T) {
	m := NewMachine(Config{OS: Linux, Seed: 6, Isolation: Isolation{PinCores: true}})
	before := m.Ctl.TotalCount(interrupt.IPIResched)
	for i := 0; i < 50; i++ {
		m.Sched.VictimBurst(sim.Millisecond, 0.5)
	}
	if m.Ctl.TotalCount(interrupt.IPIResched) < before+50 {
		t.Fatal("bursts should send rescheduling IPIs")
	}
	m.Sched.VictimBurst(0, 1) // no-op
}

func TestVictimMemoryEvictsAndShootsDown(t *testing.T) {
	m := NewMachine(Config{OS: Linux, Seed: 7})
	full := m.Cache.Resident()
	m.Sched.VictimMemory(float64(m.Cache.Geometry().Lines()))
	if m.Cache.Resident() >= full {
		t.Fatal("victim memory should evict attacker lines")
	}
	before := m.Ctl.TotalCount(interrupt.IPITLB)
	for i := 0; i < 50; i++ {
		m.Sched.VictimMemory(200000)
	}
	if m.Ctl.TotalCount(interrupt.IPITLB) <= before {
		t.Fatal("large memory churn should trigger TLB shootdowns")
	}
	m.Sched.VictimMemory(0) // no-op
}

func TestNoiseAppsAddInterrupts(t *testing.T) {
	count := func(noise bool) uint64 {
		m := NewMachine(Config{OS: Linux, Seed: 8, BackgroundNoise: noise})
		m.Eng.Run(2 * sim.Second)
		return m.Ctl.TotalCount(interrupt.NetRX) + m.Ctl.TotalCount(interrupt.SoftTimer)
	}
	quiet, noisy := count(false), count(true)
	if noisy < quiet*2 {
		t.Fatalf("noise apps: %d vs quiet %d, want clear increase", noisy, quiet)
	}
}

func TestSoftirqPolicyOverride(t *testing.T) {
	p := interrupt.SoftirqRaisingCore
	m := NewMachine(Config{OS: Linux, Seed: 9, SoftirqPolicy: &p})
	m.Eng.Run(sim.Second)
	// All baseline deferred softirqs were raised for VictimCore, so the
	// attacker core must have none of them.
	if n := m.Ctl.Counts(interrupt.SoftRCU, AttackerCore); n != 0 {
		t.Fatalf("raising-core policy leaked %d RCU softirqs to attacker", n)
	}
}

func TestMachineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too few cores")
		}
	}()
	NewMachine(Config{OS: Linux, Cores: 2})
}

func TestCPUStats(t *testing.T) {
	m := NewMachine(Config{OS: Linux, Seed: 12})
	m.Eng.Run(sim.Second)
	stats := m.CPUStats()
	if len(stats) != 4 {
		t.Fatalf("cores = %d", len(stats))
	}
	for _, st := range stats {
		if st.User+st.Kernel != sim.Duration(m.Eng.Now()) && st.Kernel < sim.Duration(m.Eng.Now()) {
			t.Fatalf("core %d: user %v + kernel %v != %v", st.Core, st.User, st.Kernel, m.Eng.Now())
		}
		if st.ByCause[cpu.CauseTimer] == 0 {
			t.Fatalf("core %d: no timer time", st.Core)
		}
		var sum sim.Duration
		for _, d := range st.ByCause {
			sum += d
		}
		if sum != st.Kernel {
			t.Fatalf("core %d: cause sum %v != kernel %v", st.Core, sum, st.Kernel)
		}
	}
}
