package kernel

import (
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Scheduler models the slice of OS scheduling behaviour that matters to the
// attack: where victim CPU bursts run, the rescheduling IPIs their wakeups
// trigger, and the (rare) preemption of the attacker when cores are shared.
//
// The attacker is a CPU-hungry busy loop, so a load balancer places victim
// work on idle cores almost always; Table 3 confirms core pinning changes
// accuracy by only 0.2 %. We model that with a small migration probability.
type Scheduler struct {
	m      *Machine
	pinned bool // victim confined to VictimCore
	rng    *sim.Stream

	// Timeslice bounds a preemption of the attacker before the balancer
	// migrates the victim away.
	Timeslice sim.Duration
	// MigrateProb is the chance an unpinned victim burst starts on the
	// attacker's (busy) core rather than an idle one.
	MigrateProb float64

	preemptions int
}

func newScheduler(m *Machine, pinned bool) *Scheduler {
	return &Scheduler{
		m: m, pinned: pinned, rng: m.rng.Fork("sched"),
		Timeslice:   sim.Millisecond,
		MigrateProb: 0.003,
	}
}

// Pinned reports whether the victim is confined to its own core.
func (s *Scheduler) Pinned() bool { return s.pinned }

// Preemptions reports how many times the attacker was preempted.
func (s *Scheduler) Preemptions() int { return s.preemptions }

// VictimBurst runs one victim CPU burst of duration d. The wakeup sends a
// rescheduling IPI to the core chosen to run the burst; if that core is the
// attacker's, the attacker loses up to one timeslice. The burst also feeds
// the frequency governor.
func (s *Scheduler) VictimBurst(d sim.Duration, load float64) {
	if d <= 0 {
		return
	}
	s.m.Gov.ReportLoad(load)
	core := VictimCore
	if !s.pinned && s.rng.Bernoulli(s.MigrateProb) {
		// Load balancer picked a non-home core; uniform among others.
		core = s.rng.IntN(len(s.m.Cores))
	}
	s.m.Ctl.SendResched(core)
	if core == AttackerCore {
		steal := d
		if steal > s.Timeslice {
			steal = s.Timeslice
		}
		s.m.Cores[AttackerCore].Steal(steal, cpu.CausePreempt)
		s.preemptions++
	}
	// Bursts often end by blocking on I/O or futexes, waking a helper
	// thread elsewhere: another resched IPI, frequently to a different
	// core (§5.2 observes resched interrupts alongside victim activity).
	if s.rng.Bernoulli(0.35) {
		s.m.Ctl.SendResched(s.rng.IntN(len(s.m.Cores)))
	}
}

// VictimMemory applies victim memory traffic of n cache-line fills: it
// evicts attacker LLC lines and, for large mapping churn, triggers TLB
// shootdown broadcasts with rescheduling IPIs alongside (§5.2: weather.com
// routinely triggers resched IPIs that "often occur alongside TLB
// shootdowns").
func (s *Scheduler) VictimMemory(lines float64) {
	if lines <= 0 {
		return
	}
	s.m.Cache.VictimAccesses(lines)
	// Roughly one unmap/remap burst per 64k lines touched (4 MiB).
	expect := lines / 65536
	n := s.rng.Poisson(expect)
	for i := 0; i < n; i++ {
		s.m.Ctl.TLBShootdown(VictimCore)
		if s.rng.Bernoulli(0.6) {
			s.m.Ctl.SendResched(s.rng.IntN(len(s.m.Cores)))
		}
	}
}
