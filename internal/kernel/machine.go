package kernel

import (
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/interrupt"
	"repro/internal/sim"
)

// Core roles on the simulated 4-core machine (no hyper-threading, like the
// paper's Table 3 test box).
const (
	IRQPinCore   = 0 // irqbalance target when RemoveIRQs is set
	AttackerCore = 1
	VictimCore   = 2
)

// Config parameterizes a Machine.
type Config struct {
	OS        OS
	Cores     int // default 4
	Seed      uint64
	Isolation Isolation
	// CacheGeometry defaults to the 8 MiB/16-way Core-i5 LLC.
	CacheGeometry cache.Geometry
	// SoftirqPolicy overrides the OS default when set (ablation knob).
	SoftirqPolicy *interrupt.SoftirqPolicy
	// BackgroundNoise runs the Slack/Spotify-style noise apps (Table 1's
	// robustness experiment).
	BackgroundNoise bool
}

// Machine is one simulated computer.
type Machine struct {
	Eng   *sim.Engine
	Cores []*cpu.Core
	Ctl   *interrupt.Controller
	Gov   *cpu.Governor
	Cache *cache.OccupancyModel
	Sched *Scheduler

	cfg Config
	rng *sim.Stream
}

// NewMachine builds and boots a machine: cores running, timer ticks firing,
// baseline background activity scheduled, isolation mechanisms applied.
func NewMachine(cfg Config) *Machine {
	m := &Machine{}
	m.boot(cfg)
	return m
}

// Reset re-boots the machine under a new configuration, recycling the
// engine, cores, interrupt controller, and cache-model allocations from the
// previous run. A reset machine is behaviorally indistinguishable from
// NewMachine(cfg): every stream fork and every event insertion happens in
// the same order, so simulations on reused machines are bit-identical to
// simulations on fresh ones. Collection loops rely on this to amortize the
// machine's object graph across thousands of visits.
func (m *Machine) Reset(cfg Config) { m.boot(cfg) }

// boot initializes a zero or previously-used machine. The order of stream
// forks ("governor-dither", "irq", "sched", "baseline-irq", "baseline-soft",
// "noise-apps") and of initial event scheduling (governor tick, per-core
// timer ticks, baseline chains, noise apps) is part of the determinism
// contract and must not change.
func (m *Machine) boot(cfg Config) {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.Cores < 3 {
		panic("kernel: need at least 3 cores for the attacker/victim/IRQ layout")
	}
	if cfg.CacheGeometry == (cache.Geometry{}) {
		cfg.CacheGeometry = cache.DefaultGeometry
	}
	prof := profileFor(cfg.OS)
	if cfg.SoftirqPolicy != nil {
		prof.irq.SoftirqPolicy = *cfg.SoftirqPolicy
	}

	if m.Eng == nil {
		m.Eng = sim.NewEngine()
	} else {
		m.Eng.Reset()
	}
	eng := m.Eng
	rng := sim.NewStream(cfg.Seed, "machine")
	startGHz := 2.5 // single-core turbo: the attacker spins from t=0
	if cfg.Isolation.FixedFreqGHz > 0 {
		startGHz = cfg.Isolation.FixedFreqGHz
	}
	if len(m.Cores) != cfg.Cores {
		m.Cores = make([]*cpu.Core, cfg.Cores)
		for i := range m.Cores {
			m.Cores[i] = cpu.NewCore(eng, i, startGHz)
		}
	} else {
		for _, c := range m.Cores {
			c.Reset(startGHz)
		}
	}
	cores := m.Cores
	m.Gov = cpu.NewGovernor(eng, cores, cpu.GovernorConfig{
		MinGHz: 2.48, MaxGHz: 2.5,
		DitherGHz: 0.01, RNG: rng.Fork("governor-dither"),
	})
	if cfg.Isolation.FixedFreqGHz > 0 {
		m.Gov.Fix(cfg.Isolation.FixedFreqGHz)
	}

	if m.Ctl == nil || m.Ctl.NumCores() != len(cores) {
		m.Ctl = interrupt.NewController(eng, cores, rng.Fork("irq"), prof.irq)
	} else {
		m.Ctl.Reset(rng.Fork("irq"), prof.irq)
	}
	if cfg.Isolation.RemoveIRQs {
		m.Ctl.SetRouting(interrupt.RoutePinned, IRQPinCore)
	}
	if cfg.Isolation.SeparateVMs {
		m.Ctl.SetVM(AttackerCore, true)
		m.Ctl.SetVM(VictimCore, true)
	}
	m.Ctl.StartTimerTicks()

	if m.Cache == nil {
		m.Cache = cache.NewOccupancyModel(cfg.CacheGeometry)
	} else {
		m.Cache.Reset(cfg.CacheGeometry)
	}
	m.cfg = cfg
	m.rng = rng
	m.Sched = newScheduler(m, cfg.Isolation.PinCores)
	m.startBaseline(prof)
	if cfg.BackgroundNoise {
		m.startNoiseApps()
	}
}

// Attacker returns the core the attacker task runs on.
func (m *Machine) Attacker() *cpu.Core { return m.Cores[AttackerCore] }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// RNG exposes the machine's root random stream for components that must
// share its determinism (page loads, attackers).
func (m *Machine) RNG() *sim.Stream { return m.rng }

// startBaseline schedules the idle machine's background interrupt activity:
// disk flushes, USB polling, RCU and timer softirqs. Rates come from the OS
// profile.
func (m *Machine) startBaseline(prof osProfile) {
	irqRNG := m.rng.Fork("baseline-irq")
	softRNG := m.rng.Fork("baseline-soft")
	var nextIRQ func()
	nextIRQ = func() {
		mean := sim.Duration(float64(sim.Second) / prof.baselineIRQRate)
		m.Eng.After(irqRNG.DurExp(mean), func() {
			if irqRNG.Bernoulli(0.6) {
				m.Ctl.RaiseIRQ(interrupt.SATA)
			} else {
				m.Ctl.RaiseIRQ(interrupt.USB)
			}
			nextIRQ()
		})
	}
	nextIRQ()

	var nextSoft func()
	nextSoft = func() {
		mean := sim.Duration(float64(sim.Second) / prof.baselineSoftRate)
		m.Eng.After(softRNG.DurExp(mean), func() {
			if softRNG.Bernoulli(0.5) {
				m.Ctl.DeferSoftirq(interrupt.SoftRCU, VictimCore)
			} else {
				m.Ctl.DeferSoftirq(interrupt.SoftTimer, VictimCore)
			}
			nextSoft()
		})
	}
	nextSoft()
}

// startNoiseApps models Slack plus Spotify playing music (§4.2): steady
// network traffic, audio-timer softirqs, and periodic CPU wakeups.
func (m *Machine) startNoiseApps() {
	rng := m.rng.Fork("noise-apps")
	var nextNet func()
	nextNet = func() {
		m.Eng.After(rng.DurExp(8*sim.Millisecond), func() {
			m.Ctl.RaiseIRQ(interrupt.NetRX)
			nextNet()
		})
	}
	nextNet()
	// Audio pipeline: 10 ms period timer work plus occasional bursts.
	m.Eng.Tick(0, 10*sim.Millisecond, func(sim.Time) {
		m.Ctl.DeferSoftirq(interrupt.SoftTimer, VictimCore)
	})
	var nextBurst func()
	nextBurst = func() {
		m.Eng.After(rng.DurExp(120*sim.Millisecond), func() {
			m.Sched.VictimBurst(rng.DurUniform(200*sim.Microsecond, 1200*sim.Microsecond), 0.3)
			nextBurst()
		})
	}
	nextBurst()
}

// CPUStat is a /proc/stat-style per-core time breakdown.
type CPUStat struct {
	Core   int
	User   sim.Duration
	Kernel sim.Duration
	// ByCause splits kernel time by steal cause, indexed by cpu.Cause.
	ByCause [cpu.NumCauses]sim.Duration
}

// CPUStats returns each core's time split as of the engine's current
// clock — the machine's /proc/stat analogue.
func (m *Machine) CPUStats() []CPUStat {
	now := m.Eng.Now()
	out := make([]CPUStat, len(m.Cores))
	for i, c := range m.Cores {
		st := CPUStat{Core: i, Kernel: c.StolenAt(now)}
		st.User = sim.Duration(now) - st.Kernel
		for cause := cpu.Cause(0); int(cause) < cpu.NumCauses; cause++ {
			st.ByCause[cause] = c.StolenByCause(cause)
		}
		out[i] = st
	}
	return out
}
