// Package kernel assembles the simulated machine: cores, interrupt
// controller, frequency governor, scheduler, cache, and the isolation knobs
// the paper's Table 3 sweeps (cpufreq-set, taskset, irqbalance, VMs).
package kernel

import (
	"fmt"

	"repro/internal/interrupt"
)

// OS selects an operating-system personality. The paper evaluates Linux
// (Ubuntu 20.04), Windows 10, and macOS Big Sur; they differ in tick rate,
// handler costs, and deferred-work policies, which shifts absolute attack
// accuracy a few points (Table 1).
type OS uint8

// Supported operating systems.
const (
	Linux OS = iota
	Windows
	MacOS
)

func (o OS) String() string {
	switch o {
	case Linux:
		return "linux"
	case Windows:
		return "windows"
	case MacOS:
		return "macos"
	default:
		return fmt.Sprintf("os(%d)", uint8(o))
	}
}

// osProfile captures per-OS simulation parameters.
type osProfile struct {
	irq interrupt.Config
	// baselineIRQRate is the idle machine's device-interrupt rate per
	// second (disk flushes, USB polling).
	baselineIRQRate float64
	// baselineSoftRate is the idle deferred-softirq rate per second.
	baselineSoftRate float64
}

func profileFor(os OS) osProfile {
	switch os {
	case Windows:
		cfg := interrupt.DefaultConfig()
		cfg.TickHZ = 100
		cfg.CostScale = 1.25 // DPC processing is heavier
		return osProfile{irq: cfg, baselineIRQRate: 80, baselineSoftRate: 60}
	case MacOS:
		cfg := interrupt.DefaultConfig()
		cfg.TickHZ = 100
		cfg.CostScale = 0.95
		return osProfile{irq: cfg, baselineIRQRate: 50, baselineSoftRate: 45}
	default: // Linux
		cfg := interrupt.DefaultConfig()
		cfg.TickHZ = 250
		cfg.CostScale = 1.0
		return osProfile{irq: cfg, baselineIRQRate: 40, baselineSoftRate: 50}
	}
}

// Isolation describes the Table 3 ladder of mechanisms. Each configuration
// in the paper adds one more mechanism; callers compose them freely here.
type Isolation struct {
	// FixedFreqGHz pins all cores at this frequency when nonzero
	// (cpufreq-set; paper uses 2.5 GHz on a 1.6–3 GHz part).
	FixedFreqGHz float64
	// PinCores places the attacker on core 1 and the victim on core 2
	// (taskset), removing scheduling contention.
	PinCores bool
	// RemoveIRQs binds all movable device IRQs to core 0 (irqbalance),
	// leaving only non-movable interrupts on the attacker's core.
	RemoveIRQs bool
	// SeparateVMs runs attacker and victim in two virtual machines,
	// amplifying every interrupt delivered to their cores.
	SeparateVMs bool
}
