package kernel

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkMachineBoot measures cold machine construction plus 100 ms of
// simulated time — the per-visit cost the Reset lifecycle amortizes.
func BenchmarkMachineBoot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewMachine(Config{OS: Linux, Seed: uint64(i)})
		m.Eng.Run(100 * sim.Millisecond)
	}
}

// BenchmarkMachineReset runs the same workload on one reused arena.
func BenchmarkMachineReset(b *testing.B) {
	b.ReportAllocs()
	m := &Machine{}
	for i := 0; i < b.N; i++ {
		m.Reset(Config{OS: Linux, Seed: uint64(i)})
		m.Eng.Run(100 * sim.Millisecond)
	}
}
